// Ablation (DESIGN.md §5): group-commit trigger — page-full vs timer.
//
// A commit group normally closes when its log page fills; with few
// concurrent transactions the page may never fill, so a timer bounds the
// wait ("the transaction is delayed from committing until its commit
// record actually appears on disk"). We sweep the flush timeout at two
// concurrency levels and report throughput, commit-group size, and the
// derived mean commit latency (threads / tps, closed loop):
//
//   * high concurrency: pages fill before any timer — the timeout barely
//     matters (the paper's 1000-tps regime);
//   * low concurrency: a long timeout trades commit latency for group
//     size; past the point where groups stop growing it only adds latency.

#include <cstdio>

#include "db/database.h"

namespace mmdb {
namespace {

/// Direct stack with a configurable timeout (the facade pins its own).
BankingResult RunWithTimeout(int threads,
                             std::chrono::microseconds flush_timeout,
                             int duration_ms) {
  SimulatedDisk disk(4096);
  StableMemory stable(1 << 20);
  LogDevice device(4096, std::chrono::milliseconds(10));
  RecoverableStore store(&disk, 10'000, 72, 4096);
  FirstUpdateTable fut(&stable, store.num_pages());
  LockManager locks;
  GroupCommitLogOptions gopts;
  gopts.group_commit = true;
  gopts.flush_timeout = flush_timeout;
  GroupCommitLog wal({&device}, gopts);
  wal.Start();
  TransactionManager tm(&store, &locks, &wal, &fut);

  BankingOptions opts;
  opts.num_accounts = 10'000;
  opts.num_threads = threads;
  opts.duration = std::chrono::milliseconds(duration_ms);
  MMDB_CHECK(InitAccounts(&store, opts).ok());
  BankingResult result = RunBankingWorkload(&tm, opts);
  wal.Stop();
  return result;
}

}  // namespace
}  // namespace mmdb

int main(int argc, char** argv) {
  using namespace mmdb;
  const int duration_ms = argc > 1 ? std::atoi(argv[1]) : 1500;
  std::printf("== Ablation: group-commit flush timeout (10 ms log page "
              "writes, %d ms runs) ==\n\n",
              duration_ms);
  std::printf("%10s %12s | %9s %12s %14s\n", "threads", "timeout",
              "tps", "group size", "latency(ms)");
  for (int threads : {4, 64}) {
    for (int timeout_us : {200, 1000, 5000, 20000}) {
      const BankingResult r = RunWithTimeout(
          threads, std::chrono::microseconds(timeout_us), duration_ms);
      std::printf("%10d %9d us | %9.0f %12.1f %14.1f\n", threads,
                  timeout_us, r.tps, r.wal.avg_commit_group,
                  r.tps > 0 ? double(threads) / r.tps * 1000 : 0.0);
    }
  }
  std::printf("\nwith 64 clients the page fills before any timer (timeout "
              "irrelevant); with 4 clients a longer timeout grows the "
              "commit group but charges every commit the wait.\n");
  return 0;
}
