#include "txn/stable_log.h"

#include <gtest/gtest.h>

#include <thread>

namespace mmdb {
namespace {

using std::chrono::microseconds;

LogRecord Update(TxnId txn, int64_t record_id, std::string old_v,
                 std::string new_v) {
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.txn_id = txn;
  rec.record_id = record_id;
  rec.old_value = std::move(old_v);
  rec.new_value = std::move(new_v);
  return rec;
}

LogRecord Commit(TxnId txn) {
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn_id = txn;
  return rec;
}

class StableLogTest : public ::testing::Test {
 protected:
  StableLogTest()
      : stable_(1 << 20), device_(512, microseconds(0)) {}

  void Build(bool compress) {
    StableLogOptions opts;
    opts.compress = compress;
    log_ = std::make_unique<StableLogBuffer>(&stable_, &device_, opts);
    log_->Start();
  }

  StableMemory stable_;
  LogDevice device_;
  std::unique_ptr<StableLogBuffer> log_;
};

TEST_F(StableLogTest, CommitIsImmediatelyDurable) {
  Build(true);
  log_->Append(Update(1, 0, "a", "b"));
  log_->AppendCommit(Commit(1), {});
  log_->WaitCommitDurable(1);  // returns instantly
  // Even before any drain, recovery sees the committed records.
  auto recs = log_->ReadAllForRecovery();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].type, LogRecordType::kUpdate);
  EXPECT_TRUE(recs[0].old_value.empty());  // compressed
  log_->Stop();
}

TEST_F(StableLogTest, DrainerMovesQueueToDevice) {
  Build(true);
  // Enough committed bytes to fill several pages.
  for (TxnId t = 1; t <= 50; ++t) {
    log_->Append(Update(t, t, std::string(40, 'o'), std::string(40, 'n')));
    log_->AppendCommit(Commit(t), {});
  }
  log_->Stop();  // drains the tail
  EXPECT_GT(device_.num_pages(), 0);
  EXPECT_EQ(log_->queued_bytes(), 0);
  auto recs = log_->ReadAllForRecovery();
  EXPECT_EQ(recs.size(), 100u);
}

TEST_F(StableLogTest, CompressionHalvesDiskBytes) {
  // §5.4: only new values of committed transactions reach the disk log.
  int64_t compressed_bytes, raw_bytes;
  {
    Build(true);
    for (TxnId t = 1; t <= 30; ++t) {
      log_->Append(
          Update(t, t, std::string(170, 'o'), std::string(170, 'n')));
      log_->AppendCommit(Commit(t), {});
    }
    log_->Stop();
    compressed_bytes = log_->stats().device_bytes;
  }
  StableMemory stable2(1 << 20);
  LogDevice device2(512, microseconds(0));
  {
    StableLogOptions opts;
    opts.compress = false;
    StableLogBuffer raw(&stable2, &device2, opts);
    raw.Start();
    for (TxnId t = 1; t <= 30; ++t) {
      raw.Append(Update(t, t, std::string(170, 'o'), std::string(170, 'n')));
      raw.AppendCommit(Commit(t), {});
    }
    raw.Stop();
    raw_bytes = raw.stats().device_bytes;
  }
  EXPECT_LT(double(compressed_bytes), 0.65 * double(raw_bytes));
}

TEST_F(StableLogTest, ActiveTxnKeepsUndoImagesForRecovery) {
  Build(true);
  log_->Append(Update(1, 0, "undo_me", "dirty"));
  // No commit: txn 1 is in flight. Its records (WITH old values) must be
  // visible to recovery from the stable per-transaction area.
  auto recs = log_->ReadAllForRecovery();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].old_value, "undo_me");
  log_->Stop();
}

TEST_F(StableLogTest, DiscardTxnFreesStableArea) {
  Build(true);
  const int64_t used_before = stable_.used();
  log_->Append(Update(5, 0, std::string(100, 'x'), std::string(100, 'y')));
  EXPECT_GT(stable_.used(), used_before);
  log_->DiscardTxn(5);
  EXPECT_EQ(stable_.used(), used_before);
  EXPECT_TRUE(log_->ReadAllForRecovery().empty());
  log_->Stop();
}

TEST_F(StableLogTest, RecoveryMergesDiskQueueAndAreasInLsnOrder) {
  Build(true);
  // Commit enough to drain some pages, then leave stragglers everywhere.
  for (TxnId t = 1; t <= 40; ++t) {
    log_->Append(Update(t, t, std::string(30, 'o'), std::string(30, 'n')));
    log_->AppendCommit(Commit(t), {});
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // part drains
  log_->Append(Update(99, 1, "active_old", "active_new"));     // in flight
  auto recs = log_->ReadAllForRecovery();
  ASSERT_EQ(recs.size(), 81u);
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LT(recs[i - 1].lsn, recs[i].lsn);
  }
  log_->Stop();
}

TEST_F(StableLogTest, ConcurrentCommitsAreAllPreserved) {
  Build(true);
  constexpr int kThreads = 8;
  constexpr int kTxnsPer = 30;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kTxnsPer; ++i) {
        const TxnId txn = t * 1000 + i + 1;
        log_->Append(Update(txn, txn, "o", "n"));
        log_->AppendCommit(Commit(txn), {});
        log_->WaitCommitDurable(txn);
      }
    });
  }
  for (auto& t : threads) t.join();
  log_->Stop();
  auto recs = log_->ReadAllForRecovery();
  EXPECT_EQ(recs.size(), 2u * kThreads * kTxnsPer);
  EXPECT_EQ(log_->stats().commits, kThreads * kTxnsPer);
}


TEST_F(StableLogTest, BackpressureBoundsTheQueue) {
  // §5.4: "in the steady state, the number of transactions processed per
  // second is still limited by how fast we can empty buffer pages".
  // With a slow device and a small queue bound, committers must block
  // rather than grow the stable queue without limit.
  StableLogOptions opts;
  opts.compress = true;
  opts.max_queue_bytes = 2048;  // 4 device pages
  LogDevice slow(512, std::chrono::microseconds(300));
  StableLogBuffer log(&stable_, &slow, opts);
  log.Start();
  for (TxnId t = 1; t <= 200; ++t) {
    log.Append(Update(t, t, std::string(40, 'o'), std::string(40, 'n')));
    log.AppendCommit(Commit(t), {});
    // The queue never exceeds the bound by more than one txn's records.
    EXPECT_LT(log.queued_bytes(), opts.max_queue_bytes + 256)
        << "txn " << t;
  }
  log.Stop();
  // Nothing was lost to the backpressure.
  EXPECT_EQ(log.ReadAllForRecovery().size(), 400u);
  EXPECT_EQ(log.stats().commits, 200);
}

}  // namespace
}  // namespace mmdb
