#include "index/hash_index.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"

namespace mmdb {
namespace {

TEST(HashIndexTest, InsertFindDelete) {
  HashIndex index;
  index.Insert(Value{int64_t{1}}, 10);
  index.Insert(Value{int64_t{2}}, 20);
  EXPECT_EQ(*index.Find(Value{int64_t{1}}), 10);
  EXPECT_EQ(index.Find(Value{int64_t{3}}).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(index.Delete(Value{int64_t{1}}).ok());
  EXPECT_FALSE(index.Find(Value{int64_t{1}}).ok());
  EXPECT_EQ(index.size(), 1);
  EXPECT_EQ(index.Delete(Value{int64_t{1}}).code(), StatusCode::kNotFound);
}

TEST(HashIndexTest, GrowsThroughResizes) {
  HashIndex index;
  constexpr int64_t kN = 20000;
  for (int64_t i = 0; i < kN; ++i) index.Insert(Value{i}, i * 2);
  EXPECT_GT(index.num_buckets(), 16);
  for (int64_t i = 0; i < kN; i += 131) {
    EXPECT_EQ(*index.Find(Value{i}), i * 2) << i;
  }
}

TEST(HashIndexTest, StringKeys) {
  HashIndex index;
  index.Insert(Value{std::string("alpha")}, 1);
  index.Insert(Value{std::string("beta")}, 2);
  EXPECT_EQ(*index.Find(Value{std::string("beta")}), 2);
  EXPECT_FALSE(index.Find(Value{std::string("gamma")}).ok());
}

TEST(HashIndexTest, FindAllReturnsEveryDuplicate) {
  HashIndex index;
  for (int i = 0; i < 7; ++i) index.Insert(Value{int64_t{5}}, 100 + i);
  index.Insert(Value{int64_t{6}}, 1);
  std::multiset<int64_t> payloads;
  index.FindAll(Value{int64_t{5}},
                [&](int64_t p) { payloads.insert(p); });
  EXPECT_EQ(payloads.size(), 7u);
  EXPECT_EQ(*payloads.begin(), 100);
}

TEST(HashIndexTest, DeleteRemovesOneDuplicateAtATime) {
  HashIndex index;
  for (int i = 0; i < 3; ++i) index.Insert(Value{int64_t{9}}, i);
  ASSERT_TRUE(index.Delete(Value{int64_t{9}}).ok());
  EXPECT_EQ(index.size(), 2);
  int count = 0;
  index.FindAll(Value{int64_t{9}}, [&](int64_t) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(HashIndexTest, ProbeCostStaysConstantish) {
  // The whole point of hashing (§4): ~O(1) comparisons per probe
  // regardless of size (cf. log n for trees).
  HashIndex index;
  Random rng(4);
  for (int64_t i = 0; i < 50000; ++i) index.Insert(Value{i}, i);
  index.ResetStats();
  constexpr int kProbes = 5000;
  for (int i = 0; i < kProbes; ++i) {
    ASSERT_TRUE(
        index.Find(Value{static_cast<int64_t>(rng.Uniform(50000))}).ok());
  }
  const double avg = double(index.stats().comparisons) / kProbes;
  EXPECT_LT(avg, 2.0);  // ~F probes on average, far below log2(50000) ~ 15.6
}

TEST(HashIndexTest, MatchesReferenceUnderRandomOps) {
  HashIndex index;
  std::multiset<int64_t> reference;
  Random rng(12);
  for (int op = 0; op < 20000; ++op) {
    const int64_t key = static_cast<int64_t>(rng.Uniform(500));
    if (rng.Bernoulli(0.6)) {
      index.Insert(Value{key}, key);
      reference.insert(key);
    } else {
      const bool present = reference.count(key) > 0;
      EXPECT_EQ(index.Delete(Value{key}).ok(), present);
      if (present) reference.erase(reference.find(key));
    }
  }
  EXPECT_EQ(index.size(), static_cast<int64_t>(reference.size()));
  for (int64_t key = 0; key < 500; ++key) {
    int count = 0;
    index.FindAll(Value{key}, [&](int64_t) { ++count; });
    EXPECT_EQ(count, static_cast<int>(reference.count(key))) << key;
  }
}

}  // namespace
}  // namespace mmdb
