#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include <cstring>

#include "storage/relation.h"

namespace mmdb {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest()
      : disk_(128),
        pool_(&disk_, 8),
        file_(&disk_, "heap"),
        heap_(&pool_, &file_, 16) {}

  SimulatedDisk disk_;
  BufferPool pool_;
  PageFile file_;
  HeapFile heap_;
};

TEST_F(HeapFileTest, AppendAssignsSequentialRecordIds) {
  char rec[16] = {};
  for (int i = 0; i < 20; ++i) {
    rec[0] = static_cast<char>(i);
    auto rid = heap_.Append(rec);
    ASSERT_TRUE(rid.ok());
    EXPECT_EQ(rid->page_no, i / heap_.records_per_page());
    EXPECT_EQ(rid->slot, i % heap_.records_per_page());
  }
  EXPECT_EQ(heap_.num_records(), 20);
}

TEST_F(HeapFileTest, GetAndUpdateRoundTrip) {
  char rec[16] = {};
  rec[0] = 'a';
  auto rid = heap_.Append(rec);
  ASSERT_TRUE(rid.ok());
  rec[0] = 'b';
  ASSERT_TRUE(heap_.Update(*rid, rec).ok());
  char out[16];
  ASSERT_TRUE(heap_.Get(*rid, out).ok());
  EXPECT_EQ(out[0], 'b');
}

TEST_F(HeapFileTest, GetBadSlotFails) {
  char rec[16] = {};
  ASSERT_TRUE(heap_.Append(rec).ok());
  char out[16];
  EXPECT_EQ(heap_.Get(RecordId{0, 7}, out).code(), StatusCode::kOutOfRange);
}

TEST_F(HeapFileTest, ScanVisitsEverythingInOrder) {
  char rec[16] = {};
  for (int i = 0; i < 25; ++i) {
    rec[0] = static_cast<char>(i);
    ASSERT_TRUE(heap_.Append(rec).ok());
  }
  int expected = 0;
  ASSERT_TRUE(heap_
                  .Scan([&](RecordId, const char* r) {
                    EXPECT_EQ(r[0], static_cast<char>(expected));
                    ++expected;
                  })
                  .ok());
  EXPECT_EQ(expected, 25);
}

TEST(PagedRecordWriterTest, WriteReadRoundTrip) {
  SimulatedDisk disk(64);
  PagedRecordWriter writer(&disk, 10, IoKind::kSequential, "spill");
  char rec[10];
  for (int i = 0; i < 37; ++i) {
    std::memset(rec, i, sizeof(rec));
    ASSERT_TRUE(writer.Append(rec).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.records_written(), 37);
  // (64-8)/10 = 5 records per page -> 8 pages.
  EXPECT_EQ(writer.pages_written(), 8);

  auto file = writer.ReleaseFile();
  PagedRecordReader reader(&disk, file, 10, IoKind::kSequential);
  int count = 0;
  while (reader.Next(rec)) {
    EXPECT_EQ(rec[0], static_cast<char>(count));
    ++count;
  }
  EXPECT_EQ(count, 37);
  disk.DeleteFile(file);
}

TEST(PagedRecordWriterTest, EmptyFileReadsNothing) {
  SimulatedDisk disk(64);
  PagedRecordWriter writer(&disk, 10, IoKind::kSequential, "spill");
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.pages_written(), 0);
  auto file = writer.ReleaseFile();
  PagedRecordReader reader(&disk, file, 10, IoKind::kSequential);
  char rec[10];
  EXPECT_FALSE(reader.Next(rec));
  disk.DeleteFile(file);
}

TEST(PagedRecordWriterTest, DestructorDeletesUnreleasedFile) {
  SimulatedDisk disk(64);
  {
    PagedRecordWriter writer(&disk, 10, IoKind::kSequential, "spill");
    char rec[10] = {};
    ASSERT_TRUE(writer.Append(rec).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  EXPECT_EQ(disk.TotalPages(), 0);
}

TEST(PagedRecordWriterTest, ChargesDeclaredIoKind) {
  CostClock clock;
  SimulatedDisk disk(64, &clock);
  PagedRecordWriter writer(&disk, 10, IoKind::kRandom, "spill");
  char rec[10] = {};
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(writer.Append(rec).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(clock.counters().rand_ios, writer.pages_written());
  EXPECT_EQ(clock.counters().seq_ios, 0);
}

TEST(RelationTest, HeapFileRoundTrip) {
  SimulatedDisk disk(256);
  BufferPool pool(&disk, 8);
  PageFile file(&disk, "rel");
  Schema schema({Column::Int64("k"), Column::Char("s", 8)});
  Relation rel(schema);
  for (int64_t i = 0; i < 50; ++i) {
    rel.Add({i, std::string("v") + std::to_string(i % 10)});
  }
  HeapFile heap(&pool, &file, schema.record_size());
  ASSERT_TRUE(rel.ToHeapFile(&heap).ok());
  auto back = Relation::FromHeapFile(schema, &heap);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_tuples(), 50);
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(back->rows()[size_t(i)], rel.rows()[size_t(i)]);
  }
}

TEST(RelationTest, NumPagesMatchesPageCapacity) {
  Schema schema({Column::Int64("k"), Column::Char("pad", 92)});  // 100 B
  Relation rel(schema);
  for (int i = 0; i < 85; ++i) rel.Add({int64_t{i}, std::string()});
  // 40 tuples per 4096-byte page -> 3 pages for 85 tuples.
  EXPECT_EQ(rel.TuplesPerPage(4096), 40);
  EXPECT_EQ(rel.NumPages(4096), 3);
}

TEST(RelationTest, SortByOrdersRows) {
  Schema schema({Column::Int64("k")});
  Relation rel(schema);
  rel.Add({int64_t{3}});
  rel.Add({int64_t{1}});
  rel.Add({int64_t{2}});
  rel.SortBy(0);
  EXPECT_EQ(std::get<int64_t>(rel.rows()[0][0]), 1);
  EXPECT_EQ(std::get<int64_t>(rel.rows()[2][0]), 3);
}

}  // namespace
}  // namespace mmdb
