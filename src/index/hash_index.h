#ifndef MMDB_INDEX_HASH_INDEX_H_
#define MMDB_INDEX_HASH_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "index/index_stats.h"
#include "storage/value.h"

namespace mmdb {

/// A chained in-memory hash index over (key, payload) pairs. §4 observes
/// that with large memories, hash structures dominate for equality access;
/// the Database facade uses this as the primary-key index of the
/// transactional plane, and the executor builds throwaway instances for
/// in-memory hash joins.
///
/// The table resizes at load factor 'F' ~ the paper's fudge factor: a hash
/// table for n keys occupies ~F·n slots.
class HashIndex {
 public:
  explicit HashIndex(double max_load_factor = 0.83 /* ~= 1/1.2, F = 1.2 */);

  /// Inserts a (key, payload) pair; duplicates allowed.
  void Insert(const Value& key, int64_t payload);

  /// Returns the payload of some entry with `key`.
  StatusOr<int64_t> Find(const Value& key);

  /// Invokes `fn` for every payload whose key equals `key`.
  void FindAll(const Value& key, const std::function<void(int64_t)>& fn);

  /// Removes one entry with `key`. NotFound if absent.
  Status Delete(const Value& key);

  int64_t size() const { return size_; }
  int64_t num_buckets() const { return static_cast<int64_t>(buckets_.size()); }

  const IndexStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  struct Entry {
    Value key;
    int64_t payload;
    int32_t next = -1;  // arena index of next in chain
  };

  size_t BucketOf(const Value& key) const {
    return static_cast<size_t>(HashValue(key) &
                               (buckets_.size() - 1));
  }
  void MaybeGrow();

  double max_load_factor_;
  std::vector<int32_t> buckets_;  // head arena index or -1
  std::vector<Entry> arena_;
  std::vector<int32_t> free_list_;
  int64_t size_ = 0;
  IndexStats stats_;
};

}  // namespace mmdb

#endif  // MMDB_INDEX_HASH_INDEX_H_
