#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "cost/join_cost.h"
#include "exec/join.h"
#include "exec/parallel.h"
#include "exec/partitioner.h"
#include "storage/heap_file.h"

namespace mmdb {

namespace {

using exec_internal::JoinHashTable;

StatusOr<Relation> HybridHashJoinImpl(const Relation& r, const Relation& s,
                                      const JoinSpec& spec, ExecContext* ctx,
                                      JoinRunStats* stats, int depth);

/// Joins a spilled (R_p, S_p) pair. If R_p's hash table fits (or recursion
/// is exhausted), builds and probes directly; otherwise applies the hybrid
/// join recursively (§3.3: "if we err slightly we can always apply the
/// hybrid hash join recursively, thereby adding an extra pass for the
/// overflow tuples").
///
/// Recursion only helps if re-hashing can actually split the partition. An
/// all-duplicates partition (every build tuple carries the same key — the
/// skew case §3.3 worries about) maps to ONE partition at every level no
/// matter the hash, so re-partitioning it rewrites the whole pair to disk
/// fruitlessly until the depth cap. Detect that up front and force the
/// in-memory probe instead: one oversized build beats max_recursion_depth
/// wasted passes over the same bytes.
Status JoinSpilledPair(std::vector<Row> r_rows, std::vector<Row> s_rows,
                       const Schema& rs, const Schema& ss,
                       const JoinSpec& spec, ExecContext* ctx,
                       JoinRunStats* stats, int depth, Relation* out) {
  const int64_t capacity =
      std::max<int64_t>(1, ctx->TuplesInPages(rs, ctx->memory_pages));
  const size_t left_col = static_cast<size_t>(spec.left_column);
  bool resolve_in_memory = static_cast<int64_t>(r_rows.size()) <= capacity ||
                           depth >= ctx->max_recursion_depth;
  if (!resolve_in_memory) {
    const Value& k0 = r_rows[0][left_col];
    bool single_key = true;
    for (size_t i = 1; i < r_rows.size(); ++i) {
      ctx->clock->Comp();
      if (!ValuesEqual(r_rows[i][left_col], k0)) {
        single_key = false;
        break;
      }
    }
    if (single_key) {
      resolve_in_memory = true;
      if (stats != nullptr) ++stats->forced_probes;
    }
  }
  if (resolve_in_memory) {
    JoinHashTable table(spec.left_column, ctx->clock);
    for (Row& row : r_rows) {
      ctx->clock->Hash();
      ctx->clock->Move();
      table.Insert(std::move(row));
    }
    for (const Row& row : s_rows) {
      ctx->clock->Hash();
      table.Probe(row[static_cast<size_t>(spec.right_column)],
                  [&](const Row& r_row) {
                    exec_internal::EmitJoined(r_row, row, out);
                  });
    }
    return Status::OK();
  }
  // Recursive application with a fresh hash function (level = depth + 1).
  Relation r_rel(rs, std::move(r_rows));
  Relation s_rel(ss, std::move(s_rows));
  JoinRunStats child_stats;
  MMDB_ASSIGN_OR_RETURN(
      Relation child,
      HybridHashJoinImpl(r_rel, s_rel, spec, ctx, &child_stats, depth + 1));
  if (stats != nullptr) {
    stats->recursion_depth =
        std::max(stats->recursion_depth, child_stats.recursion_depth);
    stats->forced_probes += child_stats.forced_probes;
    stats->migrations += child_stats.migrations;
  }
  for (Row& row : child.mutable_rows()) {
    out->Add(std::move(row));
  }
  return Status::OK();
}

/// Hybrid hash join with dynamic partition migration (Jahangiri & Carey,
/// *Design Trade-offs for a Robust Dynamic Hybrid Hash Join*): instead of
/// carving a fixed resident fraction q up front (and shaving it by 4 sigma
/// so hash noise would not overflow it), split R uniformly into P
/// partitions and decide *per partition, during the build* which ones stay
/// memory-resident. Whenever the buffered build exceeds the memory grant,
/// the largest resident partition is destaged (its buffered tuples move to
/// its spill file — the "migration"); everything that hashes there later
/// goes straight to disk. Skew or a bad size estimate therefore costs
/// exactly the partitions that truly do not fit, never the static split's
/// save-everything fallback.
///
/// One code path serves every DOP: the destaging schedule is *replayed*
/// from the partition-id array (a pure function of the input), so which
/// partitions migrate — and hence every downstream charge — is identical
/// whether the scan ran on one worker or eight:
///  * partition ids compute morsel-parallel (one Hash per tuple);
///  * resident partitions build serially in input order;
///  * each spilled partition is written by one task (input order →
///    byte-identical spill files); migrated tuples charge one extra Move
///    each (the rewrite from the hash table to the output buffer);
///  * resident S tuples probe morsel-parallel with matches concatenated in
///    morsel order (the serial emission order);
///  * phase 2 runs one task per spilled pair, outputs concatenated in
///    partition order.
StatusOr<Relation> HybridHashJoinImpl(const Relation& r, const Relation& s,
                                      const JoinSpec& spec, ExecContext* ctx,
                                      JoinRunStats* stats, int depth) {
  const Schema& rs = r.schema();
  const Schema& ss = s.schema();
  Relation out(Schema::Concat(rs, ss));
  if (stats != nullptr) stats->recursion_depth = depth;

  const int64_t r_pages = std::max<int64_t>(1, r.NumPages(ctx->page_size()));
  const HybridSplit split =
      SolveHybridSplit(r_pages, ctx->memory_pages, ctx->fudge);
  const int64_t P = split.q >= 1.0 ? 1 : split.num_partitions + 1;
  HashPartitioner partitioner(P, static_cast<uint32_t>(depth));

  // ---- Phase 1a: partition ids for R (the partitioning hash).
  std::vector<int32_t> r_pids;
  MMDB_RETURN_IF_ERROR(ComputePartitionIds(
      ctx, r.rows(),
      [&](const Row& row) {
        return partitioner.PartitionOf(
            row[static_cast<size_t>(spec.left_column)]);
      },
      &r_pids));
  const std::vector<std::vector<int64_t>> r_groups =
      GroupIndicesByPartition(r_pids, P);

  // ---- Destaging schedule: replay R's arrival order, evicting the
  // largest resident partition whenever the buffered build would exceed
  // the grant. Each spilled partition claims one output-buffer page, so
  // the build's share shrinks as partitions destage.
  std::vector<char> spilled(static_cast<size_t>(P), 0);
  std::vector<int64_t> buffered(static_cast<size_t>(P), 0);
  int64_t resident_rows = 0;
  int64_t spilled_count = 0;
  int64_t migrated_rows = 0;  // buffered tuples rewritten on eviction
  int64_t migrations = 0;     // evictions that had buffered tuples
  auto capacity_now = [&]() {
    return std::max<int64_t>(
        1, ctx->TuplesInPages(
               rs, std::max<int64_t>(1, ctx->memory_pages - spilled_count)));
  };
  for (int32_t pid : r_pids) {
    const size_t p = static_cast<size_t>(pid);
    if (spilled[p]) continue;
    ++buffered[p];
    ++resident_rows;
    while (resident_rows > capacity_now() && P > 1 &&
           spilled_count < P) {
      // Evict the largest buffered partition (ties -> lowest id). Evicting
      // an empty partition frees nothing, so stop once only empties remain.
      size_t victim = 0;
      int64_t victim_rows = -1;
      for (size_t cand = 0; cand < spilled.size(); ++cand) {
        if (!spilled[cand] && buffered[cand] > victim_rows) {
          victim = cand;
          victim_rows = buffered[cand];
        }
      }
      if (victim_rows <= 0) break;
      spilled[victim] = 1;
      ++spilled_count;
      ++migrations;
      migrated_rows += buffered[victim];
      resident_rows -= buffered[victim];
      buffered[victim] = 0;
    }
  }
  if (stats != nullptr) {
    stats->partitions = spilled_count;
    stats->migrations += migrations;
    stats->q = r_pids.empty()
                   ? 1.0
                   : double(resident_rows) / double(r_pids.size());
  }

  // ---- Phase 1b over R: build the resident partitions in input order;
  // one spill task per destaged partition. Migrated tuples sat in the hash
  // table before their partition destaged: charge the rewrite.
  const IoKind spill_kind =
      spilled_count <= 1 ? IoKind::kSequential : IoKind::kRandom;
  JoinHashTable resident(spec.left_column, ctx->clock);
  for (int64_t p = 0; p < P; ++p) {
    if (spilled[static_cast<size_t>(p)]) continue;
    for (int64_t idx : r_groups[static_cast<size_t>(p)]) {
      ctx->clock->Move();
      resident.Insert(r.rows()[static_cast<size_t>(idx)]);
    }
  }
  std::unique_ptr<PartitionWriterSet> r_spill;
  std::unique_ptr<PartitionWriterSet> s_spill;
  if (spilled_count > 0) {
    ctx->clock->Move(migrated_rows);
    r_spill = std::make_unique<PartitionWriterSet>(ctx, rs, P, spill_kind,
                                                   "hybrid_r");
    std::vector<std::vector<int64_t>> spill_groups = r_groups;
    for (int64_t p = 0; p < P; ++p) {
      if (!spilled[static_cast<size_t>(p)]) {
        spill_groups[static_cast<size_t>(p)].clear();
      }
    }
    MMDB_RETURN_IF_ERROR(
        ParallelDistribute(ctx, r.rows(), spill_groups, 0, r_spill.get()));
    MMDB_RETURN_IF_ERROR(r_spill->FinishAll());
  }

  // ---- Phase 1c over S: resident partitions probe immediately
  // (morsel-parallel against the now read-only table), the rest spills.
  std::vector<int32_t> s_pids;
  MMDB_RETURN_IF_ERROR(ComputePartitionIds(
      ctx, s.rows(),
      [&](const Row& row) {
        return partitioner.PartitionOf(
            row[static_cast<size_t>(spec.right_column)]);
      },
      &s_pids));
  std::vector<int64_t> probe_idx;
  for (size_t i = 0; i < s_pids.size(); ++i) {
    if (!spilled[static_cast<size_t>(s_pids[i])]) {
      probe_idx.push_back(static_cast<int64_t>(i));
    }
  }
  {
    const std::vector<IndexRange> morsels =
        MorselRanges(static_cast<int64_t>(probe_idx.size()));
    std::vector<std::vector<Row>> emitted(morsels.size());
    MMDB_RETURN_IF_ERROR(ParallelFor(
        ctx, static_cast<int64_t>(morsels.size()),
        [&](ExecContext* wctx, int, int64_t m) {
          std::vector<Row>& local = emitted[static_cast<size_t>(m)];
          const IndexRange range = morsels[static_cast<size_t>(m)];
          for (int64_t i = range.begin; i < range.end; ++i) {
            const Row& row = s.rows()[static_cast<size_t>(
                probe_idx[static_cast<size_t>(i)])];
            resident.ProbeWith(
                wctx->clock, row[static_cast<size_t>(spec.right_column)],
                [&](const Row& r_row) {
                  local.push_back(ConcatRows(r_row, row));
                });
          }
          return Status::OK();
        }));
    for (std::vector<Row>& batch : emitted) {
      for (Row& row : batch) {
        out.Add(std::move(row));
      }
    }
  }
  if (spilled_count > 0) {
    s_spill = std::make_unique<PartitionWriterSet>(ctx, ss, P, spill_kind,
                                                   "hybrid_s");
    std::vector<std::vector<int64_t>> spill_groups =
        GroupIndicesByPartition(s_pids, P);
    for (int64_t p = 0; p < P; ++p) {
      if (!spilled[static_cast<size_t>(p)]) {
        spill_groups[static_cast<size_t>(p)].clear();
      }
    }
    MMDB_RETURN_IF_ERROR(
        ParallelDistribute(ctx, s.rows(), spill_groups, 0, s_spill.get()));
    MMDB_RETURN_IF_ERROR(s_spill->FinishAll());
  }

  // ---- Phase 2: one task per spilled pair, concatenated in partition
  // order (the serial emission order).
  if (spilled_count > 0) {
    auto r_parts = r_spill->Release();
    auto s_parts = s_spill->Release();
    std::vector<Relation> partial(static_cast<size_t>(P));
    std::vector<JoinRunStats> pair_stats(static_cast<size_t>(P));
    MMDB_RETURN_IF_ERROR(ParallelFor(
        ctx, P, [&](ExecContext* wctx, int, int64_t i) {
          const auto& rp = r_parts[static_cast<size_t>(i)];
          const auto& sp = s_parts[static_cast<size_t>(i)];
          if (rp.records == 0 || sp.records == 0) {
            wctx->disk->DeleteFile(rp.file);
            wctx->disk->DeleteFile(sp.file);
            return Status::OK();
          }
          MMDB_ASSIGN_OR_RETURN(std::vector<Row> r_rows,
                                ReadAndDeletePartition(wctx, rs, rp));
          MMDB_ASSIGN_OR_RETURN(std::vector<Row> s_rows,
                                ReadAndDeletePartition(wctx, ss, sp));
          Relation local(out.schema());
          JoinRunStats local_stats;
          MMDB_RETURN_IF_ERROR(JoinSpilledPair(
              std::move(r_rows), std::move(s_rows), rs, ss, spec, wctx,
              &local_stats, depth, &local));
          pair_stats[static_cast<size_t>(i)] = local_stats;
          partial[static_cast<size_t>(i)] = std::move(local);
          return Status::OK();
        }));
    for (Relation& p : partial) {
      for (Row& row : p.mutable_rows()) {
        out.Add(std::move(row));
      }
    }
    if (stats != nullptr) {
      for (const JoinRunStats& ps : pair_stats) {
        stats->recursion_depth =
            std::max(stats->recursion_depth, ps.recursion_depth);
        stats->forced_probes += ps.forced_probes;
        stats->migrations += ps.migrations;
      }
    }
  }

  if (stats != nullptr) stats->output_tuples = out.num_tuples();
  return out;
}

}  // namespace

StatusOr<Relation> HybridHashJoin(const Relation& r, const Relation& s,
                                  const JoinSpec& spec, ExecContext* ctx,
                                  JoinRunStats* stats) {
  return HybridHashJoinImpl(r, s, spec, ctx, stats, 0);
}

}  // namespace mmdb
