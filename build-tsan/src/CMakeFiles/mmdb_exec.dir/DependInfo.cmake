
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/aggregate.cc" "src/CMakeFiles/mmdb_exec.dir/exec/aggregate.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/aggregate.cc.o.d"
  "/root/repo/src/exec/exec_context.cc" "src/CMakeFiles/mmdb_exec.dir/exec/exec_context.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/exec_context.cc.o.d"
  "/root/repo/src/exec/external_sort.cc" "src/CMakeFiles/mmdb_exec.dir/exec/external_sort.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/external_sort.cc.o.d"
  "/root/repo/src/exec/join.cc" "src/CMakeFiles/mmdb_exec.dir/exec/join.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/join.cc.o.d"
  "/root/repo/src/exec/join_grace.cc" "src/CMakeFiles/mmdb_exec.dir/exec/join_grace.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/join_grace.cc.o.d"
  "/root/repo/src/exec/join_hybrid.cc" "src/CMakeFiles/mmdb_exec.dir/exec/join_hybrid.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/join_hybrid.cc.o.d"
  "/root/repo/src/exec/join_simple_hash.cc" "src/CMakeFiles/mmdb_exec.dir/exec/join_simple_hash.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/join_simple_hash.cc.o.d"
  "/root/repo/src/exec/join_sort_merge.cc" "src/CMakeFiles/mmdb_exec.dir/exec/join_sort_merge.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/join_sort_merge.cc.o.d"
  "/root/repo/src/exec/join_tid.cc" "src/CMakeFiles/mmdb_exec.dir/exec/join_tid.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/join_tid.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/CMakeFiles/mmdb_exec.dir/exec/operator.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/operator.cc.o.d"
  "/root/repo/src/exec/parallel.cc" "src/CMakeFiles/mmdb_exec.dir/exec/parallel.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/parallel.cc.o.d"
  "/root/repo/src/exec/partitioner.cc" "src/CMakeFiles/mmdb_exec.dir/exec/partitioner.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/partitioner.cc.o.d"
  "/root/repo/src/exec/setops.cc" "src/CMakeFiles/mmdb_exec.dir/exec/setops.cc.o" "gcc" "src/CMakeFiles/mmdb_exec.dir/exec/setops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/mmdb_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/mmdb_cost.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/mmdb_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/mmdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
