#ifndef MMDB_OPTIMIZER_EXECUTOR_H_
#define MMDB_OPTIMIZER_EXECUTOR_H_

#include <map>
#include <string>

#include "exec/exec_context.h"
#include "optimizer/catalog.h"
#include "optimizer/plan.h"

namespace mmdb {

/// Serves IndexScan plan nodes: returns every row of `table` satisfying
/// `pred` (an equality or prefix restriction on an indexed column).
/// Implemented by Database over its AVL / B+-tree / hash indexes; plans
/// executed without a provider fall back to scan + filter.
class IndexProvider {
 public:
  virtual ~IndexProvider() = default;
  /// `ctx` is the executing statement's context: implementations charge
  /// CPU work to ctx->clock (falling back to their own clock when null) so
  /// concurrently executing statements never share an unsynchronized clock.
  virtual StatusOr<Relation> IndexLookupAll(const std::string& table,
                                            const Predicate& pred,
                                            ExecContext* ctx) = 0;
};

/// What one plan node actually did during an EXPLAIN ANALYZE run. Every
/// figure is *inclusive* of the node's children (execution is depth-first,
/// so a node's window contains its subtree); the renderer derives self
/// time by subtracting the children's inclusive costs.
struct PlanNodeRunStats {
  int64_t rows_out = 0;
  int64_t comparisons = 0;       ///< cost-clock comparison charges
  int64_t hashes = 0;            ///< cost-clock hash charges
  int64_t page_reads = 0;        ///< simulated-disk page reads
  int64_t page_writes = 0;       ///< simulated-disk page writes
  int64_t spill_partitions = 0;  ///< "exec.spill.partitions" delta
  int64_t spill_bytes = 0;       ///< "exec.spill.bytes" delta
  double cost_seconds = 0;       ///< simulated cost-clock delta
  int64_t wall_ns = 0;           ///< real elapsed time (inclusive)
  /// Reuse-cache outcome for this node (DESIGN.md §15): 0 = cache off /
  /// not cacheable, 1 = result served from cache (subtree skipped), 2 =
  /// join probe ran against a cached build hash table, 3 = looked up and
  /// missed. Rendered by EXPLAIN ANALYZE as cache=hit / hit(build) / miss.
  int cache_state = 0;
};

/// Per-node statistics keyed by plan node, filled by ExecutePlan when the
/// caller passes a trace (the EXPLAIN ANALYZE path).
struct PlanRunTrace {
  std::map<const PlanNode*, PlanNodeRunStats> nodes;
};

/// Executes a physical plan produced by Optimizer::Optimize against the
/// catalog's memory-resident tables, charging all operator work (filter
/// comparisons, join hashing/moving/probing, spill I/O) to ctx->clock.
/// With `trace` non-null, each node's actual row counts, comparisons, page
/// I/O, spill volume and cost-clock delta are recorded (spill figures need
/// ctx->metrics attached).
StatusOr<Relation> ExecutePlan(const PlanNode& plan, const Catalog& catalog,
                               ExecContext* ctx,
                               IndexProvider* indexes = nullptr,
                               PlanRunTrace* trace = nullptr);

/// The plan text with each node annotated by its actual run statistics:
///   Join[hybrid-hash](...)  [~60 tuples, 0.123s]
///       (actual rows=60 comps=118 reads=0 spill=0B self=0.012s)
std::string RenderAnalyzedPlan(const PlanNode& plan,
                               const PlanRunTrace& trace);

/// Convenience: optimize + execute in one call. With `trace` non-null the
/// returned plan_text is the EXPLAIN ANALYZE rendering.
struct QueryResult {
  Relation relation;
  std::string plan_text;
};
StatusOr<QueryResult> RunQuery(const Query& query, const Catalog& catalog,
                               const struct OptimizerOptions& options,
                               ExecContext* ctx,
                               IndexProvider* indexes = nullptr,
                               PlanRunTrace* trace = nullptr);

}  // namespace mmdb

#endif  // MMDB_OPTIMIZER_EXECUTOR_H_
