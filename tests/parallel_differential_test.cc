#include <gtest/gtest.h>

#include <set>
#include <string>

#include "exec/aggregate.h"
#include "exec/join.h"
#include "storage/datagen.h"

namespace mmdb {
namespace {

/// The property under test (DESIGN.md §8): for every operator that supports
/// DOP, a parallel run must produce (a) the exact result multiset of its
/// serial counterpart and (b) the exact same simulated-cost tallies — at
/// every DOP and on every rerun, because the cost clock is the repo's
/// ground truth and must not wobble with the thread schedule.

constexpr int kDops[] = {2, 4, 8};
constexpr int kReruns = 2;

std::multiset<std::string> Canonical(const Relation& rel) {
  std::multiset<std::string> out;
  for (const Row& row : rel.rows()) out.insert(RowToString(row));
  return out;
}

struct DiffCase {
  int64_t r_tuples;
  int64_t s_tuples;
  KeyDistribution s_dist;
  int64_t s_key_range;
  double memory_ratio;  ///< |M| as a fraction of |R|*F (spill pressure)
  const char* name;
};

const DiffCase kCases[] = {
    // In-memory: single-partition / one-pass code paths.
    {400, 400, KeyDistribution::kUniform, 400, 2.0, "inmem"},
    // Half-memory: hybrid spills some partitions, simple hash needs passes.
    {600, 900, KeyDistribution::kUniform, 600, 0.5, "half_memory"},
    // Severe memory pressure: deep partitioning on every algorithm.
    {800, 1600, KeyDistribution::kUniform, 800, 0.15, "tiny_memory"},
    // Zipf skew: unbalanced partitions and morsels.
    {500, 1200, KeyDistribution::kZipf, 500, 0.3, "zipf_skew"},
    // Duplicate-heavy: long probe chains, many-to-many matches.
    {300, 900, KeyDistribution::kUniform, 40, 0.4, "duplicate_heavy"},
    // Build side larger than probe side (stresses pass/partition counts).
    {1500, 300, KeyDistribution::kUniform, 1500, 0.25, "large_build"},
};

class ParallelJoinDifferentialTest
    : public ::testing::TestWithParam<DiffCase> {};

TEST_P(ParallelJoinDifferentialTest, MatchesSerialResultAndCosts) {
  const DiffCase c = GetParam();
  GenOptions r_opts;
  r_opts.num_tuples = c.r_tuples;
  r_opts.tuple_width = 64;
  r_opts.seed = 4242;
  GenOptions s_opts;
  s_opts.num_tuples = c.s_tuples;
  s_opts.tuple_width = 48;
  s_opts.distribution = c.s_dist;
  s_opts.key_range = c.s_key_range;
  s_opts.seed = 2424;
  const Relation r = MakeKeyedRelation(r_opts);
  const Relation s = MakeKeyedRelation(s_opts);
  const JoinSpec spec{0, 0};
  const int64_t memory = std::max<int64_t>(
      2,
      static_cast<int64_t>(c.memory_ratio * double(r.NumPages(4096)) * 1.2));

  const JoinAlgorithm kParallelAlgorithms[] = {JoinAlgorithm::kSimpleHash,
                                               JoinAlgorithm::kGraceHash,
                                               JoinAlgorithm::kHybridHash};
  for (JoinAlgorithm alg : kParallelAlgorithms) {
    ExecEnv serial_env(memory);
    JoinRunStats serial_stats;
    auto serial = ExecuteJoin(alg, r, s, spec, &serial_env.ctx,
                              &serial_stats);
    ASSERT_TRUE(serial.ok()) << JoinAlgorithmName(alg);
    const auto expected = Canonical(*serial);
    const CostCounters expected_counters = serial_env.clock.counters();

    for (int dop : kDops) {
      for (int rerun = 0; rerun < kReruns; ++rerun) {
        ExecEnv env(memory);
        env.ctx.dop = dop;
        JoinRunStats stats;
        auto out = ExecuteJoin(alg, r, s, spec, &env.ctx, &stats);
        ASSERT_TRUE(out.ok())
            << JoinAlgorithmName(alg) << " dop=" << dop;
        EXPECT_EQ(Canonical(*out), expected)
            << JoinAlgorithmName(alg) << " dop=" << dop;
        EXPECT_EQ(env.clock.counters(), expected_counters)
            << JoinAlgorithmName(alg) << " dop=" << dop
            << " rerun=" << rerun << "\nserial: "
            << serial_env.clock.DebugString() << "\nparallel: "
            << env.clock.DebugString();
        EXPECT_EQ(stats.output_tuples, serial_stats.output_tuples);
        EXPECT_EQ(stats.passes, serial_stats.passes);
        EXPECT_EQ(stats.partitions, serial_stats.partitions);
        EXPECT_EQ(env.disk.TotalPages(), 0)
            << JoinAlgorithmName(alg) << " dop=" << dop;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, ParallelJoinDifferentialTest,
                         ::testing::ValuesIn(kCases),
                         [](const auto& info) { return info.param.name; });

TEST(ParallelJoinDifferentialTest, EmptyInputsAtEveryDop) {
  Schema schema({Column::Int64("key"), Column::Int64("payload")});
  Relation empty(schema);
  GenOptions opts;
  opts.num_tuples = 200;
  opts.tuple_width = 16;
  Relation full = MakeKeyedRelation(opts);
  const JoinAlgorithm kParallelAlgorithms[] = {JoinAlgorithm::kSimpleHash,
                                               JoinAlgorithm::kGraceHash,
                                               JoinAlgorithm::kHybridHash};
  for (JoinAlgorithm alg : kParallelAlgorithms) {
    for (int dop : kDops) {
      ExecEnv env(4);
      env.ctx.dop = dop;
      auto a = ExecuteJoin(alg, empty, full, JoinSpec{0, 0}, &env.ctx);
      ASSERT_TRUE(a.ok()) << JoinAlgorithmName(alg) << " dop=" << dop;
      EXPECT_EQ(a->num_tuples(), 0);
      auto b = ExecuteJoin(alg, full, empty, JoinSpec{0, 0}, &env.ctx);
      ASSERT_TRUE(b.ok()) << JoinAlgorithmName(alg) << " dop=" << dop;
      EXPECT_EQ(b->num_tuples(), 0);
      auto c = ExecuteJoin(alg, empty, empty, JoinSpec{0, 0}, &env.ctx);
      ASSERT_TRUE(c.ok()) << JoinAlgorithmName(alg) << " dop=" << dop;
      EXPECT_EQ(c->num_tuples(), 0);
      EXPECT_EQ(env.disk.TotalPages(), 0);
    }
  }
}

struct AggCase {
  int64_t tuples;
  KeyDistribution dist;
  int64_t key_range;
  int64_t memory_pages;
  const char* name;
};

const AggCase kAggCases[] = {
    {500, KeyDistribution::kUniform, 50, 1024, "one_pass_few_groups"},
    {500, KeyDistribution::kUniqueShuffled, 500, 1024, "one_pass_all_distinct"},
    {4000, KeyDistribution::kUniform, 200, 8, "partitioned"},
    {4000, KeyDistribution::kZipf, 400, 8, "partitioned_zipf"},
    {3000, KeyDistribution::kUniform, 6, 8, "partitioned_duplicate_heavy"},
};

class ParallelAggregateDifferentialTest
    : public ::testing::TestWithParam<AggCase> {};

TEST_P(ParallelAggregateDifferentialTest, MatchesSerialResultAndCosts) {
  const AggCase c = GetParam();
  GenOptions opts;
  opts.num_tuples = c.tuples;
  opts.tuple_width = 48;
  opts.distribution = c.dist;
  opts.key_range = c.key_range;
  opts.seed = 777;
  const Relation input = MakeKeyedRelation(opts);

  // Group by key; aggregate the int64 payload column. Integer-valued sums
  // keep the float accumulation exact regardless of merge order, so the
  // parallel SUM/AVG must match the serial one bit for bit (DESIGN.md §8).
  AggregateSpec spec;
  spec.group_by = {0};
  spec.aggregates = {{AggFn::kCount, 0, "cnt"},
                     {AggFn::kSum, 1, "sum_payload"},
                     {AggFn::kMin, 1, "min_payload"},
                     {AggFn::kMax, 1, "max_payload"},
                     {AggFn::kAvg, 1, "avg_payload"}};

  ExecEnv serial_env(c.memory_pages);
  AggStats serial_stats;
  auto serial = HashAggregate(input, spec, &serial_env.ctx, &serial_stats);
  ASSERT_TRUE(serial.ok());
  const auto expected = Canonical(*serial);
  const CostCounters expected_counters = serial_env.clock.counters();

  for (int dop : kDops) {
    for (int rerun = 0; rerun < kReruns; ++rerun) {
      ExecEnv env(c.memory_pages);
      env.ctx.dop = dop;
      AggStats stats;
      auto out = HashAggregate(input, spec, &env.ctx, &stats);
      ASSERT_TRUE(out.ok()) << "dop=" << dop;
      EXPECT_EQ(Canonical(*out), expected) << "dop=" << dop;
      EXPECT_EQ(env.clock.counters(), expected_counters)
          << "dop=" << dop << " rerun=" << rerun << "\nserial: "
          << serial_env.clock.DebugString() << "\nparallel: "
          << env.clock.DebugString();
      EXPECT_EQ(stats.one_pass, serial_stats.one_pass);
      EXPECT_EQ(stats.partitions, serial_stats.partitions);
      EXPECT_EQ(stats.groups, serial_stats.groups);
      EXPECT_EQ(env.disk.TotalPages(), 0) << "dop=" << dop;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, ParallelAggregateDifferentialTest,
                         ::testing::ValuesIn(kAggCases),
                         [](const auto& info) { return info.param.name; });

TEST(ParallelAggregateDifferentialTest, ProjectDistinctAtEveryDop) {
  GenOptions opts;
  opts.num_tuples = 2000;
  opts.tuple_width = 32;
  opts.distribution = KeyDistribution::kUniform;
  opts.key_range = 64;
  opts.seed = 31;
  const Relation input = MakeKeyedRelation(opts);

  ExecEnv serial_env(8);
  auto serial = ProjectDistinct(input, {0}, &serial_env.ctx);
  ASSERT_TRUE(serial.ok());
  const auto expected = Canonical(*serial);
  const CostCounters expected_counters = serial_env.clock.counters();
  for (int dop : kDops) {
    ExecEnv env(8);
    env.ctx.dop = dop;
    auto out = ProjectDistinct(input, {0}, &env.ctx);
    ASSERT_TRUE(out.ok()) << "dop=" << dop;
    EXPECT_EQ(Canonical(*out), expected) << "dop=" << dop;
    EXPECT_EQ(env.clock.counters(), expected_counters) << "dop=" << dop;
  }
}

TEST(ParallelAggregateDifferentialTest, EmptyInputAtEveryDop) {
  Schema schema({Column::Int64("key"), Column::Int64("payload")});
  Relation empty(schema);
  AggregateSpec spec;
  spec.group_by = {0};
  spec.aggregates = {{AggFn::kCount, 0, "cnt"}};
  for (int dop : kDops) {
    ExecEnv env(8);
    env.ctx.dop = dop;
    auto out = HashAggregate(empty, spec, &env.ctx);
    ASSERT_TRUE(out.ok()) << "dop=" << dop;
    EXPECT_EQ(out->num_tuples(), 0);
  }
}

TEST(ParallelDifferentialTest, Dop1IsBitIdenticalToSerialIncludingOrder) {
  // DOP=1 must take the original serial code paths: identical output
  // SEQUENCE (not just multiset) and identical tallies.
  GenOptions r_opts;
  r_opts.num_tuples = 700;
  r_opts.tuple_width = 64;
  r_opts.seed = 9;
  GenOptions s_opts;
  s_opts.num_tuples = 1400;
  s_opts.tuple_width = 48;
  s_opts.distribution = KeyDistribution::kUniform;
  s_opts.key_range = 700;
  s_opts.seed = 10;
  const Relation r = MakeKeyedRelation(r_opts);
  const Relation s = MakeKeyedRelation(s_opts);
  const int64_t memory =
      std::max<int64_t>(2, static_cast<int64_t>(
                               0.3 * double(r.NumPages(4096)) * 1.2));
  const JoinAlgorithm kParallelAlgorithms[] = {JoinAlgorithm::kSimpleHash,
                                               JoinAlgorithm::kGraceHash,
                                               JoinAlgorithm::kHybridHash};
  for (JoinAlgorithm alg : kParallelAlgorithms) {
    ExecEnv a(memory);
    auto out_a = ExecuteJoin(alg, r, s, JoinSpec{0, 0}, &a.ctx);
    ASSERT_TRUE(out_a.ok());
    ExecEnv b(memory);
    b.ctx.dop = 1;  // explicit, same thing
    auto out_b = ExecuteJoin(alg, r, s, JoinSpec{0, 0}, &b.ctx);
    ASSERT_TRUE(out_b.ok());
    ASSERT_EQ(out_a->num_tuples(), out_b->num_tuples());
    for (int64_t i = 0; i < out_a->num_tuples(); ++i) {
      ASSERT_EQ(RowToString(out_a->rows()[static_cast<size_t>(i)]),
                RowToString(out_b->rows()[static_cast<size_t>(i)]))
          << JoinAlgorithmName(alg) << " row " << i;
    }
    EXPECT_EQ(a.clock.counters(), b.clock.counters())
        << JoinAlgorithmName(alg);
  }
}

}  // namespace
}  // namespace mmdb
