file(REMOVE_RECURSE
  "CMakeFiles/setops_test.dir/setops_test.cc.o"
  "CMakeFiles/setops_test.dir/setops_test.cc.o.d"
  "setops_test"
  "setops_test.pdb"
  "setops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
