// DOP sweep over the Figure 1 workload (EXPERIMENTS.md §S6): runs the
// three parallelized hash joins and hash aggregation at DOP 1/2/4/8 on the
// 1/10-scale Figure 1 relations, reporting wall-clock time and simulated
// seconds per DOP.
//
// Two different clocks are on display:
//  * SIMULATED seconds (the paper's cost model) must be IDENTICAL at every
//    DOP — the parallel operators charge per-worker clocks that merge into
//    the same totals (DESIGN.md §8). The bench verifies this.
//  * WALL-CLOCK seconds measure the real parallel execution; speedup
//    depends on the host's core count (on a single-core container the
//    wall-clock cannot improve and thread switching adds overhead).

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

#include "common/check.h"
#include "common/thread_pool.h"
#include "exec/aggregate.h"
#include "exec/join.h"
#include "storage/datagen.h"

namespace mmdb {
namespace {

constexpr int kDops[] = {1, 2, 4, 8};
constexpr int kRepeats = 3;  // best-of to tame scheduler noise

double WallSeconds(const std::function<void()>& fn) {
  double best = 1e300;
  for (int rep = 0; rep < kRepeats; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - start;
    if (dt.count() < best) best = dt.count();
  }
  return best;
}

void SweepJoins() {
  constexpr int64_t kTuples = 40'000;  // 1/10 of Table 2
  GenOptions r_opts;
  r_opts.num_tuples = kTuples;
  r_opts.tuple_width = 100;
  r_opts.seed = 11;
  GenOptions s_opts = r_opts;
  s_opts.distribution = KeyDistribution::kUniform;
  s_opts.key_range = kTuples;
  s_opts.seed = 22;
  const Relation r = MakeKeyedRelation(r_opts);
  const Relation s = MakeKeyedRelation(s_opts);
  const JoinSpec spec{0, 0};
  const int64_t r_pages = r.NumPages(4096);
  const CostParams params = CostParams::Table2Defaults();

  std::printf("hardware threads: %u, shared pool threads: %d\n\n",
              std::thread::hardware_concurrency(),
              ThreadPool::Shared()->num_threads());

  const JoinAlgorithm algs[] = {JoinAlgorithm::kSimpleHash,
                                JoinAlgorithm::kGraceHash,
                                JoinAlgorithm::kHybridHash};
  for (double ratio : {0.3, 0.55, 1.1}) {
    const int64_t memory =
        static_cast<int64_t>(ratio * double(r_pages) * params.fudge);
    std::printf("== joins, |M|/(|R|F) = %.2f (|M| = %lld pages) ==\n", ratio,
                static_cast<long long>(memory));
    std::printf("%-12s %5s %12s %14s %10s\n", "algorithm", "dop", "wall s",
                "simulated s", "speedup");
    for (JoinAlgorithm alg : algs) {
      double base_wall = 0;
      double serial_sim = -1;
      int64_t serial_tuples = -1;
      std::string serial_metrics;
      for (int dop : kDops) {
        double sim = 0;
        int64_t tuples = 0;
        std::string metrics_json;
        const double wall = WallSeconds([&] {
          ExecEnv env(memory);
          env.ctx.dop = dop;
          StatusOr<Relation> out = ExecuteJoin(alg, r, s, spec, &env.ctx);
          MMDB_CHECK(out.ok());
          sim = env.clock.Seconds();
          tuples = out->num_tuples();
          metrics_json = env.metrics.ToJson();
        });
        if (dop == 1) {
          base_wall = wall;
          serial_sim = sim;
          serial_tuples = tuples;
          serial_metrics = metrics_json;
        }
        MMDB_CHECK_MSG(sim == serial_sim,
                       "simulated seconds drifted with DOP");
        MMDB_CHECK_MSG(tuples == serial_tuples, "join result drifted");
        // The per-worker metric shards merge like the worker clocks, so the
        // JSON snapshot must be byte-identical at every DOP (DESIGN.md §9).
        MMDB_CHECK_MSG(metrics_json == serial_metrics,
                       "metrics drifted with DOP");
        std::printf("%-12s %5d %12.4f %14.2f %9.2fx\n",
                    std::string(JoinAlgorithmName(alg)).c_str(), dop, wall,
                    sim, base_wall / wall);
      }
    }
    std::printf("\n");
  }
}

void SweepAggregation() {
  GenOptions opts;
  opts.num_tuples = 200'000;
  opts.tuple_width = 48;
  opts.distribution = KeyDistribution::kUniform;
  opts.key_range = 5'000;
  opts.seed = 33;
  const Relation input = MakeKeyedRelation(opts);
  AggregateSpec spec;
  spec.group_by = {0};
  spec.aggregates = {{AggFn::kCount, 0, "cnt"},
                     {AggFn::kSum, 1, "sum_payload"},
                     {AggFn::kMax, 1, "max_payload"}};

  std::printf("== hash aggregation, %lld tuples -> %lld groups ==\n",
              static_cast<long long>(opts.num_tuples),
              static_cast<long long>(opts.key_range));
  std::printf("%-12s %5s %12s %14s %10s\n", "memory", "dop", "wall s",
              "simulated s", "speedup");
  std::string last_metrics;
  for (int64_t memory : {int64_t{4096}, int64_t{64}}) {
    double base_wall = 0;
    double serial_sim = -1;
    std::string serial_metrics;
    for (int dop : kDops) {
      double sim = 0;
      int64_t groups = 0;
      const double wall = WallSeconds([&] {
        ExecEnv env(memory);
        env.ctx.dop = dop;
        AggStats stats;
        StatusOr<Relation> out = HashAggregate(input, spec, &env.ctx, &stats);
        MMDB_CHECK(out.ok());
        sim = env.clock.Seconds();
        groups = stats.groups;
        last_metrics = env.metrics.ToJson();
      });
      if (dop == 1) {
        base_wall = wall;
        serial_sim = sim;
        serial_metrics = last_metrics;
      }
      MMDB_CHECK_MSG(sim == serial_sim, "simulated seconds drifted with DOP");
      MMDB_CHECK_MSG(groups == opts.key_range, "group count drifted");
      MMDB_CHECK_MSG(last_metrics == serial_metrics,
                     "metrics drifted with DOP");
      char mem_label[32];
      std::snprintf(mem_label, sizeof(mem_label), "%lld pages",
                    static_cast<long long>(memory));
      std::printf("%-12s %5d %12.4f %14.2f %9.2fx\n", mem_label, dop, wall,
                  sim, base_wall / wall);
    }
  }
  std::printf("\nsimulated seconds and metrics snapshots identical at every "
              "DOP (asserted), as DESIGN.md §8/§9 require.\n");
  std::printf("\nmetrics (last aggregation run):\n%s\n", last_metrics.c_str());
}

}  // namespace
}  // namespace mmdb

int main() {
  mmdb::SweepJoins();
  mmdb::SweepAggregation();
  return 0;
}
