#ifndef MMDB_EXEC_AGGREGATE_H_
#define MMDB_EXEC_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "storage/relation.h"

namespace mmdb {

/// Aggregate functions supported by the §3.9 grouping machinery.
enum class AggFn { kCount, kSum, kMin, kMax, kAvg };

/// GROUP BY `group_by` with zero or more aggregates. With no aggregates the
/// result is exactly a duplicate-eliminating projection (the paper: "in
/// projection we are grouping identical tuples while in an aggregate
/// function operation we are grouping tuples with an identical partitioning
/// attribute").
struct AggregateSpec {
  struct Aggregate {
    AggFn fn = AggFn::kCount;
    int column = 0;  ///< input column (ignored for kCount)
    std::string name;
  };

  std::vector<int> group_by;
  std::vector<Aggregate> aggregates;
};

/// Diagnostics from one aggregation.
struct AggStats {
  bool one_pass = false;   ///< result built without partitioning
  int64_t partitions = 0;  ///< spill partitions when not one-pass
  int64_t groups = 0;
};

/// Result schema of an aggregation: the group-by columns followed by one
/// column per aggregate (COUNT -> INT64, SUM/AVG -> DOUBLE, MIN/MAX -> the
/// input column's type). Shared by the tuple and the batch implementations
/// so the two paths cannot drift.
Schema AggregateOutputSchema(const Schema& input, const AggregateSpec& spec);

/// Validates `spec` against `input_schema` (column ranges, SUM/AVG not on
/// strings) — the shared precondition of both aggregation paths.
Status ValidateAggregateSpec(const Schema& input_schema,
                             const AggregateSpec& spec);

/// §3.9: hash-based aggregation. If the input (hence certainly the result)
/// fits in |M| pages a single hash pass groups everything in memory;
/// otherwise the input is hash-partitioned on the grouping attributes and
/// each partition is aggregated independently (groups never straddle
/// partitions because the partitioning is compatible with the grouping
/// hash), recursing if a partition still overflows.
StatusOr<Relation> HashAggregate(const Relation& input,
                                 const AggregateSpec& spec, ExecContext* ctx,
                                 AggStats* stats = nullptr);

/// §3.9: projection with duplicate elimination — grouping identical
/// projected tuples via the same machinery.
StatusOr<Relation> ProjectDistinct(const Relation& input,
                                   const std::vector<int>& columns,
                                   ExecContext* ctx,
                                   AggStats* stats = nullptr);

}  // namespace mmdb

#endif  // MMDB_EXEC_AGGREGATE_H_
