#include "exec/parallel.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <memory>

#include "common/check.h"
#include "common/thread_pool.h"

namespace mmdb {

std::vector<IndexRange> MorselRanges(int64_t n, int64_t morsel_rows) {
  MMDB_CHECK(morsel_rows >= 1);
  std::vector<IndexRange> out;
  if (n <= 0) return out;
  out.reserve(static_cast<size_t>((n + morsel_rows - 1) / morsel_rows));
  for (int64_t begin = 0; begin < n; begin += morsel_rows) {
    out.push_back({begin, std::min(n, begin + morsel_rows)});
  }
  return out;
}

int PlannedWorkers(const ExecContext* ctx, int64_t num_chunks) {
  if (num_chunks <= 0) return 0;
  return static_cast<int>(
      std::min<int64_t>(std::max(1, ctx->dop), num_chunks));
}

namespace {

/// One worker's private execution state: a clock of the same machine
/// model, a private metrics shard (when the caller records metrics), and a
/// context clone pointing at them (dop = 1 — nested operators serial).
struct WorkerSlot {
  CostClock clock;
  MetricsRegistry metrics;
  ExecContext ctx;

  explicit WorkerSlot(const ExecContext& base)
      : clock(base.clock->params()), ctx(base) {
    ctx.clock = &clock;
    ctx.metrics = base.metrics != nullptr ? &metrics : nullptr;
    ctx.dop = 1;
  }
};

}  // namespace

Status ParallelFor(
    ExecContext* ctx, int64_t num_chunks,
    const std::function<Status(ExecContext*, int, int64_t)>& fn) {
  const int workers = PlannedWorkers(ctx, num_chunks);
  if (workers <= 1) {
    for (int64_t c = 0; c < num_chunks; ++c) {
      MMDB_RETURN_IF_ERROR(fn(ctx, 0, c));
    }
    return Status::OK();
  }

  std::vector<std::unique_ptr<WorkerSlot>> slots;
  slots.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    slots.push_back(std::make_unique<WorkerSlot>(*ctx));
  }

  std::atomic<int64_t> cursor{0};
  std::atomic<bool> failed{false};
  std::vector<Status> chunk_status(static_cast<size_t>(num_chunks));
  auto run_worker = [&](int w) {
    ExecContext* wctx = &slots[static_cast<size_t>(w)]->ctx;
    for (;;) {
      const int64_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      if (failed.load(std::memory_order_acquire)) continue;  // drain fast
      Status s = fn(wctx, w, c);
      if (!s.ok()) {
        chunk_status[static_cast<size_t>(c)] = std::move(s);
        failed.store(true, std::memory_order_release);
      }
    }
  };

  ThreadPool* pool = ThreadPool::Shared();
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    futures.push_back(pool->Submit([&run_worker, w] { run_worker(w); }));
  }
  for (std::future<void>& f : futures) {
    f.get();
  }
  // All workers are done (future::get is the synchronization point): fold
  // their tallies into the shared clock and metrics. Addition commutes, so
  // the totals do not depend on which worker processed which chunk.
  for (const auto& slot : slots) {
    ctx->clock->MergeFrom(slot->clock);
    if (ctx->metrics != nullptr) ctx->metrics->MergeFrom(slot->metrics);
  }
  if (failed.load(std::memory_order_acquire)) {
    for (const Status& s : chunk_status) {
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

Status ComputePartitionIds(ExecContext* ctx, const std::vector<Row>& rows,
                           const std::function<int64_t(const Row&)>& pid_of,
                           std::vector<int32_t>* pids) {
  pids->assign(rows.size(), 0);
  const std::vector<IndexRange> morsels =
      MorselRanges(static_cast<int64_t>(rows.size()));
  return ParallelFor(
      ctx, static_cast<int64_t>(morsels.size()),
      [&](ExecContext* wctx, int, int64_t m) {
        const IndexRange range = morsels[static_cast<size_t>(m)];
        for (int64_t i = range.begin; i < range.end; ++i) {
          wctx->clock->Hash();
          (*pids)[static_cast<size_t>(i)] = static_cast<int32_t>(
              pid_of(rows[static_cast<size_t>(i)]));
        }
        return Status::OK();
      });
}

std::vector<std::vector<int64_t>> GroupIndicesByPartition(
    const std::vector<int32_t>& pids, int64_t num_partitions) {
  std::vector<std::vector<int64_t>> groups(
      static_cast<size_t>(num_partitions));
  for (size_t i = 0; i < pids.size(); ++i) {
    groups[static_cast<size_t>(pids[i])].push_back(static_cast<int64_t>(i));
  }
  return groups;
}

Status ParallelDistribute(ExecContext* ctx, const std::vector<Row>& rows,
                          const std::vector<std::vector<int64_t>>& groups,
                          int64_t first_group, PartitionWriterSet* writers) {
  const int64_t num_writers =
      static_cast<int64_t>(groups.size()) - first_group;
  return ParallelFor(
      ctx, num_writers, [&](ExecContext* wctx, int, int64_t p) {
        std::vector<char> scratch(
            static_cast<size_t>(writers->record_size()));
        for (int64_t idx : groups[static_cast<size_t>(first_group + p)]) {
          MMDB_RETURN_IF_ERROR(
              writers->AppendTo(p, rows[static_cast<size_t>(idx)],
                                wctx->clock, scratch.data()));
        }
        return Status::OK();
      });
}

}  // namespace mmdb
