#include "common/metrics.h"

#include <gtest/gtest.h>

#include <climits>
#include <string>

#include "exec/aggregate.h"
#include "exec/join.h"
#include "storage/datagen.h"

namespace mmdb {
namespace {

// ---------------------------------------------------------------------------
// Counters.

TEST(MetricsCounterTest, AddSetGet) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.Get("never.touched"), 0);
  reg.Add("a", 3);
  reg.Add("a", 4);
  EXPECT_EQ(reg.Get("a"), 7);
  reg.Set("a", 100);
  EXPECT_EQ(reg.Get("a"), 100);
  reg.Add("a", -1);
  EXPECT_EQ(reg.Get("a"), 99);
}

TEST(MetricsCounterTest, HandlesAreStableAcrossInsertions) {
  MetricsRegistry reg;
  MetricCounter* a = reg.counter("a");
  a->Add(1);
  // Force rebalancing / new nodes; the handle must stay valid.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i))->Add(1);
  }
  a->Add(1);
  EXPECT_EQ(reg.Get("a"), 2);
  EXPECT_EQ(reg.counter("a"), a);  // get-or-create returns the same object
}

// ---------------------------------------------------------------------------
// Histograms.

TEST(MetricsHistogramTest, BucketOfIsBitWidth) {
  // Bucket i holds values of bit width i, i.e. [2^(i-1), 2^i).
  EXPECT_EQ(MetricHistogram::BucketOf(-5), 0);
  EXPECT_EQ(MetricHistogram::BucketOf(0), 0);
  EXPECT_EQ(MetricHistogram::BucketOf(1), 1);
  EXPECT_EQ(MetricHistogram::BucketOf(2), 2);
  EXPECT_EQ(MetricHistogram::BucketOf(3), 2);
  EXPECT_EQ(MetricHistogram::BucketOf(4), 3);
  EXPECT_EQ(MetricHistogram::BucketOf(7), 3);
  EXPECT_EQ(MetricHistogram::BucketOf(8), 4);
  EXPECT_EQ(MetricHistogram::BucketOf(1023), 10);
  EXPECT_EQ(MetricHistogram::BucketOf(1024), 11);
  EXPECT_EQ(MetricHistogram::BucketOf(INT64_MAX),
            MetricHistogram::kNumBuckets - 1);
}

TEST(MetricsHistogramTest, RecordTracksCountSumMinMaxBuckets) {
  MetricHistogram h;
  h.Record(5);
  h.Record(1);
  h.Record(12);
  const MetricHistogram::Data d = h.data();
  EXPECT_EQ(d.count, 3);
  EXPECT_EQ(d.sum, 18);
  EXPECT_EQ(d.min, 1);
  EXPECT_EQ(d.max, 12);
  EXPECT_DOUBLE_EQ(d.Mean(), 6.0);
  EXPECT_EQ(d.buckets[size_t(MetricHistogram::BucketOf(1))], 1);
  EXPECT_EQ(d.buckets[size_t(MetricHistogram::BucketOf(5))], 1);
  EXPECT_EQ(d.buckets[size_t(MetricHistogram::BucketOf(12))], 1);
}

TEST(MetricsHistogramTest, MergeCombinesAndEmptyMergeIsNoOp) {
  MetricHistogram a;
  a.Record(2);
  a.Record(100);
  MetricHistogram b;
  b.Record(1);
  b.Record(50);
  a.MergeFrom(b);
  MetricHistogram::Data d = a.data();
  EXPECT_EQ(d.count, 4);
  EXPECT_EQ(d.sum, 153);
  EXPECT_EQ(d.min, 1);
  EXPECT_EQ(d.max, 100);

  MetricHistogram empty;
  a.MergeFrom(empty);  // no-op
  EXPECT_TRUE(a.data() == d);

  empty.MergeFrom(a);  // merge into empty adopts min/max wholesale
  EXPECT_TRUE(empty.data() == d);
}

// ---------------------------------------------------------------------------
// Registry merge / reset / snapshot semantics.

TEST(MetricsRegistryTest, MergeFromAddsCountersAndMergesHistograms) {
  MetricsRegistry a;
  a.Add("shared", 10);
  a.Add("only_a", 1);
  a.Record("hist", 4);
  MetricsRegistry b;
  b.Add("shared", 5);
  b.Add("only_b", 2);
  b.Record("hist", 16);
  a.MergeFrom(b);
  EXPECT_EQ(a.Get("shared"), 15);
  EXPECT_EQ(a.Get("only_a"), 1);
  EXPECT_EQ(a.Get("only_b"), 2);
  const MetricHistogram::Data d = a.histogram("hist")->data();
  EXPECT_EQ(d.count, 2);
  EXPECT_EQ(d.sum, 20);
  EXPECT_EQ(d.min, 4);
  EXPECT_EQ(d.max, 16);
  // The source registry is untouched.
  EXPECT_EQ(b.Get("shared"), 5);
}

TEST(MetricsRegistryTest, SnapshotSurvivesReset) {
  MetricsRegistry reg;
  reg.Add("c", 42);
  reg.Record("h", 9);
  const MetricsRegistry::Snapshot snap = reg.TakeSnapshot();
  reg.Reset();
  // The snapshot keeps the pre-reset values...
  EXPECT_EQ(snap.counters.at("c"), 42);
  EXPECT_EQ(snap.histograms.at("h").count, 1);
  // ...while the registry is zeroed with the names intact.
  EXPECT_EQ(reg.Get("c"), 0);
  EXPECT_EQ(reg.histogram("h")->data().count, 0);
  const MetricsRegistry::Snapshot after = reg.TakeSnapshot();
  EXPECT_EQ(after.counters.count("c"), 1u);
  EXPECT_EQ(after.counters.at("c"), 0);
}

TEST(MetricsRegistryTest, ToJsonIsDeterministicAndNameSorted) {
  MetricsRegistry reg;
  reg.Add("zeta", 1);
  reg.Add("alpha", 2);
  reg.Record("h", 3);
  reg.Record("h", 1024);
  EXPECT_EQ(reg.ToJson(),
            "{\"counters\":{\"alpha\":2,\"zeta\":1},"
            "\"histograms\":{\"h\":{\"count\":2,\"sum\":1027,\"min\":3,"
            "\"max\":1024,\"buckets\":[[4,1],[2048,1]]}}}");
}

TEST(MetricsRegistryTest, ToJsonEscapesQuotesAndBackslashes) {
  MetricsRegistry reg;
  reg.Add("quo\"te\\slash", 1);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"quo\\\"te\\\\slash\":1"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Determinism at every DOP (DESIGN.md §8/§9): the per-worker metric shards
// merge exactly like the worker cost clocks, so the merged totals must be
// independent of the thread schedule — identical to the serial run at DOP
// 2/4/8 and across reruns, both for the in-memory and the spilling paths.

constexpr int kDops[] = {2, 4, 8};
constexpr int kReruns = 2;

void ExpectSnapshotsEqual(const MetricsRegistry::Snapshot& got,
                          const MetricsRegistry::Snapshot& want,
                          const std::string& label) {
  EXPECT_EQ(got.counters, want.counters) << label;
  EXPECT_TRUE(got.histograms == want.histograms)
      << label << "\n got: " << got.ToJson() << "\nwant: " << want.ToJson();
}

TEST(MetricsParallelTest, JoinMetricsIdenticalAtEveryDop) {
  GenOptions r_opts;
  r_opts.num_tuples = 600;
  r_opts.tuple_width = 64;
  r_opts.seed = 4242;
  GenOptions s_opts;
  s_opts.num_tuples = 900;
  s_opts.tuple_width = 48;
  s_opts.key_range = 600;
  s_opts.seed = 2424;
  const Relation r = MakeKeyedRelation(r_opts);
  const Relation s = MakeKeyedRelation(s_opts);
  // Half-memory so hybrid hash really spills: exec.spill.* must stay
  // deterministic even when parallel workers share the partition writers.
  const int64_t memory = std::max<int64_t>(
      2, static_cast<int64_t>(0.5 * double(r.NumPages(4096)) * 1.2));

  const JoinAlgorithm kAlgorithms[] = {JoinAlgorithm::kSimpleHash,
                                       JoinAlgorithm::kGraceHash,
                                       JoinAlgorithm::kHybridHash};
  for (JoinAlgorithm alg : kAlgorithms) {
    ExecEnv serial_env(memory);
    auto serial = ExecuteJoin(alg, r, s, JoinSpec{0, 0}, &serial_env.ctx);
    ASSERT_TRUE(serial.ok()) << JoinAlgorithmName(alg);
    const MetricsRegistry::Snapshot expected =
        serial_env.metrics.TakeSnapshot();
    const CostCounters expected_counters = serial_env.clock.counters();
    EXPECT_GT(expected.counters.at("exec.join.runs"), 0);

    for (int dop : kDops) {
      for (int rerun = 0; rerun < kReruns; ++rerun) {
        ExecEnv env(memory);
        env.ctx.dop = dop;
        auto out = ExecuteJoin(alg, r, s, JoinSpec{0, 0}, &env.ctx);
        ASSERT_TRUE(out.ok()) << JoinAlgorithmName(alg) << " dop=" << dop;
        const std::string label = std::string(JoinAlgorithmName(alg)) +
                                  " dop=" + std::to_string(dop) +
                                  " rerun=" + std::to_string(rerun);
        ExpectSnapshotsEqual(env.metrics.TakeSnapshot(), expected, label);
        EXPECT_EQ(env.clock.counters(), expected_counters) << label;
      }
    }
  }
}

TEST(MetricsParallelTest, AggregateMetricsIdenticalAtEveryDop) {
  GenOptions opts;
  opts.num_tuples = 4000;
  opts.tuple_width = 48;
  opts.key_range = 200;
  opts.seed = 777;
  const Relation input = MakeKeyedRelation(opts);
  AggregateSpec spec;
  spec.group_by = {0};
  spec.aggregates = {{AggFn::kCount, 0, "cnt"}, {AggFn::kSum, 1, "sum"}};

  ExecEnv serial_env(8);  // 8 pages => partitioned (spilling) path
  auto serial = HashAggregate(input, spec, &serial_env.ctx);
  ASSERT_TRUE(serial.ok());
  const MetricsRegistry::Snapshot expected = serial_env.metrics.TakeSnapshot();
  EXPECT_EQ(expected.counters.at("exec.agg.input_tuples"), 4000);
  EXPECT_GT(expected.counters.at("exec.agg.spilled_partitions"), 0);

  for (int dop : kDops) {
    for (int rerun = 0; rerun < kReruns; ++rerun) {
      ExecEnv env(8);
      env.ctx.dop = dop;
      auto out = HashAggregate(input, spec, &env.ctx);
      ASSERT_TRUE(out.ok()) << "dop=" << dop;
      ExpectSnapshotsEqual(
          env.metrics.TakeSnapshot(), expected,
          "dop=" + std::to_string(dop) + " rerun=" + std::to_string(rerun));
    }
  }
}

TEST(MetricsParallelTest, NullMetricsPointerRecordsNothingAndStillRuns) {
  GenOptions opts;
  opts.num_tuples = 300;
  opts.tuple_width = 32;
  opts.seed = 5;
  const Relation r = MakeKeyedRelation(opts);
  ExecEnv env(1024);
  env.ctx.metrics = nullptr;  // observability off
  for (int dop : {1, 4}) {
    env.ctx.dop = dop;
    auto out = ExecuteJoin(JoinAlgorithm::kHybridHash, r, r, JoinSpec{0, 0},
                           &env.ctx);
    ASSERT_TRUE(out.ok()) << "dop=" << dop;
    EXPECT_EQ(out->num_tuples(), 300);
  }
  EXPECT_EQ(env.metrics.Get("exec.join.runs"), 0);
}

}  // namespace
}  // namespace mmdb
