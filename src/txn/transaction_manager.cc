#include "txn/transaction_manager.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "txn/version_store.h"

namespace mmdb {

TransactionManager::TransactionManager(RecoverableStore* store,
                                       LockManager* locks, Wal* wal,
                                       FirstUpdateTable* fut,
                                       TxnId first_txn_id,
                                       VersionManager* versions)
    : store_(store),
      locks_(locks),
      wal_(wal),
      fut_(fut),
      versions_(versions) {
  next_txn_.store(first_txn_id);
}

TxnId TransactionManager::Begin() {
  const TxnId txn = next_txn_.fetch_add(1);
  LogRecord rec;
  rec.type = LogRecordType::kBegin;
  rec.txn_id = txn;
  wal_->Append(std::move(rec));
  std::unique_lock<std::mutex> lock(mu_);
  active_[txn] = TxnState{};
  ++stats_.begun;
  return txn;
}

StatusOr<std::string> TransactionManager::Read(TxnId txn, int64_t record_id) {
  std::vector<TxnId> deps;
  MMDB_RETURN_IF_ERROR(
      locks_->Acquire(txn, record_id, LockMode::kShared, &deps));
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = active_.find(txn);
    if (it == active_.end()) {
      return Status::FailedPrecondition("transaction not active");
    }
    // Reading a pre-committed writer's data makes us its dependent (§5.2).
    it->second.deps.insert(it->second.deps.end(), deps.begin(), deps.end());
  }
  std::string value;
  MMDB_RETURN_IF_ERROR(store_->ReadRecord(record_id, &value));
  return value;
}

Status TransactionManager::Update(TxnId txn, int64_t record_id,
                                  std::string_view new_value) {
  std::vector<TxnId> deps;
  MMDB_RETURN_IF_ERROR(
      locks_->Acquire(txn, record_id, LockMode::kExclusive, &deps));

  std::string old_value;
  MMDB_RETURN_IF_ERROR(store_->ReadRecord(record_id, &old_value));
  if (versions_ != nullptr) {
    // Base capture must precede the in-place write so snapshot readers can
    // never observe our uncommitted value (see VersionManager::Read).
    versions_->CaptureBase(record_id, old_value);
  }

  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.txn_id = txn;
  rec.record_id = record_id;
  rec.old_value = old_value;
  rec.new_value.assign(new_value.data(), new_value.size());
  const Lsn lsn = wal_->Append(rec);

  MMDB_RETURN_IF_ERROR(store_->WriteRecord(record_id, new_value, lsn, fut_));

  std::unique_lock<std::mutex> lock(mu_);
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  it->second.deps.insert(it->second.deps.end(), deps.begin(), deps.end());
  it->second.undo.push_back(
      UndoEntry{record_id, std::move(old_value), std::string(new_value)});
  return Status::OK();
}

Status TransactionManager::Commit(TxnId txn) {
  std::vector<TxnId> deps;
  std::vector<UndoEntry> undo;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = active_.find(txn);
    if (it == active_.end()) {
      return Status::FailedPrecondition("transaction not active");
    }
    deps = std::move(it->second.deps);
    undo = std::move(it->second.undo);
    active_.erase(it);
  }
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());

  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn_id = txn;
  // 1. Pre-commit: the commit record enters the log buffer.
  wal_->AppendCommit(std::move(rec), deps);
  // 1b. Publish versions before releasing locks, so the commit sequence
  // respects serialization order (a dependent writer cannot even acquire
  // our locks, let alone publish, before this point).
  if (versions_ != nullptr && !undo.empty()) {
    std::map<int64_t, std::string> final_values;
    for (const UndoEntry& u : undo) {
      final_values[u.record_id] = u.new_value;  // last write wins
    }
    std::vector<std::pair<int64_t, std::string>> published(
        final_values.begin(), final_values.end());
    versions_->PublishCommit(published);
  }
  // 2. Locks release immediately — dependents may proceed.
  locks_->PreCommit(txn);
  // 3. Durability ("the user is not notified until...").
  wal_->WaitCommitDurable(txn);
  // 4. Finalize.
  locks_->FinalizeCommit(txn);
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.committed;
  }
  return Status::OK();
}

Status TransactionManager::Abort(TxnId txn) {
  TxnState state;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = active_.find(txn);
    if (it == active_.end()) {
      return Status::FailedPrecondition("transaction not active");
    }
    state = std::move(it->second);
    active_.erase(it);
  }
  // Compensation updates, newest first: restore old values in memory and
  // in the log, so recovery can simply replay aborted transactions.
  for (auto it = state.undo.rbegin(); it != state.undo.rend(); ++it) {
    LogRecord rec;
    rec.type = LogRecordType::kUpdate;
    rec.txn_id = txn;
    rec.record_id = it->record_id;
    rec.old_value = it->new_value;  // compensation: swap directions
    rec.new_value = it->old_value;
    const Lsn lsn = wal_->Append(rec);
    MMDB_RETURN_IF_ERROR(
        store_->WriteRecord(it->record_id, it->old_value, lsn, fut_));
  }
  LogRecord abort_rec;
  abort_rec.type = LogRecordType::kAbort;
  abort_rec.txn_id = txn;
  // AppendCommit gives the abort record commit-like sealing semantics
  // (the stable log moves the txn's records to its output queue).
  wal_->AppendCommit(std::move(abort_rec), {});
  locks_->ReleaseAll(txn);
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.aborted;
  }
  return Status::OK();
}

TransactionManager::Stats TransactionManager::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mmdb
