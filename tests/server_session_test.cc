#include "server/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "server/session.h"
#include "server/sql_scheduler.h"

namespace mmdb {
namespace {

using SqlResult = Database::SqlResult;

std::string Ddl() {
  return "CREATE TABLE acct (id INT64, owner CHAR(12), balance DOUBLE)";
}

void Seed(Database* db, int rows) {
  ASSERT_TRUE(db->ExecuteSql(Ddl()).ok());
  for (int i = 0; i < rows; ++i) {
    ASSERT_TRUE(db
                    ->ExecuteSql("INSERT INTO acct VALUES (" +
                                 std::to_string(i) + ", 'owner" +
                                 std::to_string(i % 7) + "', " +
                                 std::to_string(100.0 + i) + ")")
                    .ok());
  }
}

/// The table's rows rendered and sorted — an order-independent fingerprint.
std::vector<std::string> TableFingerprint(Database* db,
                                          const std::string& table) {
  auto rel = db->GetTable(table);
  std::vector<std::string> rows;
  if (!rel.ok()) return rows;
  for (const Row& row : (*rel)->rows()) rows.push_back(RowToString(row));
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(SessionTest, BasicSqlRoundTrip) {
  Database db;
  Seed(&db, 20);
  Server server(&db);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());

  auto rows = (*session)->ExecuteSql("SELECT id, balance FROM acct");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->relation.num_tuples(), 20);

  auto update =
      (*session)->ExecuteSql("UPDATE acct SET balance = 0.0 WHERE id < 5");
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->rows_affected, 5);

  auto zeroed = (*session)->ExecuteSql(
      "SELECT id FROM acct WHERE balance < 1.0");
  ASSERT_TRUE(zeroed.ok());
  EXPECT_EQ(zeroed->relation.num_tuples(), 5);
  ASSERT_TRUE(server.CloseSession((*session)->id()).ok());
}

TEST(SessionTest, TracePlansRunsExplainAnalyze) {
  Database db;
  Seed(&db, 10);
  Server server(&db);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());
  (*session)->set_trace_plans(true);
  auto traced = (*session)->ExecuteSql("SELECT id FROM acct WHERE id = 3");
  ASSERT_TRUE(traced.ok());
  EXPECT_TRUE(traced->analyzed);
  EXPECT_NE(traced->plan_text.find("actual rows"), std::string::npos);
  EXPECT_EQ(traced->relation.num_tuples(), 1);
}

TEST(SessionTest, BatchRunsPastErrors) {
  Database db;
  Seed(&db, 5);
  Server server(&db);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());
  auto results = (*session)->ExecuteBatch(
      "INSERT INTO acct VALUES (100, 'batch; guy', 1.0); "
      "SELECT nonsense FROM nowhere; "
      "SELECT id FROM acct WHERE id = 100;");
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());  // the error does not abort the batch
  ASSERT_TRUE(results[2].ok());
  EXPECT_EQ(results[2]->relation.num_tuples(), 1);
}

TEST(SessionTest, SplitStatementsRespectsStringLiterals) {
  auto stmts = Session::SplitStatements(
      "INSERT INTO t VALUES (1, 'a;b');; SELECT x FROM t;   ");
  ASSERT_EQ(stmts.size(), 2u);
  EXPECT_NE(stmts[0].find("'a;b'"), std::string::npos);
  EXPECT_EQ(stmts[1].find("INSERT"), std::string::npos);
}

TEST(SessionTest, CloseSessionWaitsForQueuedStatements) {
  Database db;
  Seed(&db, 5);
  Server::Options opts;
  opts.scheduler.num_workers = 1;
  opts.scheduler.max_inflight_per_session = 8;
  Server server(&db, opts);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());

  // Hold the single worker so the second statement stays queued while the
  // session is being closed: CloseSession must wait for both instead of
  // freeing the session under them.
  std::atomic<bool> release{false};
  server.scheduler()->set_before_execute_hook([&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  auto f1 = (*session)->SubmitSql("SELECT id FROM acct");  // executing
  auto f2 = (*session)->SubmitSql("SELECT id FROM acct");  // queued
  const int64_t sid = (*session)->id();
  std::thread closer(
      [&server, sid] { EXPECT_TRUE(server.CloseSession(sid).ok()); });
  // The closer must block while statements are in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(server.active_sessions(), 0);  // already out of the table...
  release.store(true);
  closer.join();  // ...but only destroyed once both statements finished
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  server.scheduler()->set_before_execute_hook(nullptr);
}

TEST(AdmissionTest, QueueFullRejectsWithOverloaded) {
  Database db;
  Seed(&db, 5);
  Server::Options opts;
  opts.scheduler.num_workers = 1;
  opts.scheduler.max_queue_depth = 2;
  opts.scheduler.max_inflight_per_session = 8;
  Server server(&db, opts);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());

  // Hold the single worker so admitted statements pile up deterministically.
  std::atomic<bool> release{false};
  server.scheduler()->set_before_execute_hook([&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  auto f1 = (*session)->SubmitSql("SELECT id FROM acct");  // executing
  auto f2 = (*session)->SubmitSql("SELECT id FROM acct");  // queued
  auto f3 = (*session)->SubmitSql("SELECT id FROM acct");  // over the bound
  auto r3 = f3.get();
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kOverloaded);

  release.store(true);
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  EXPECT_GE(db.metrics()->Get("server.admission.rejected_queue_full"), 1);
  server.scheduler()->set_before_execute_hook(nullptr);
}

TEST(AdmissionTest, PerSessionInFlightCap) {
  Database db;
  Seed(&db, 5);
  Server::Options opts;
  opts.scheduler.num_workers = 1;
  opts.scheduler.max_queue_depth = 64;
  opts.scheduler.max_inflight_per_session = 1;
  Server server(&db, opts);
  auto hog = server.OpenSession();
  auto other = server.OpenSession();
  ASSERT_TRUE(hog.ok());
  ASSERT_TRUE(other.ok());

  std::atomic<bool> release{false};
  server.scheduler()->set_before_execute_hook([&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  auto f1 = (*hog)->SubmitSql("SELECT id FROM acct");
  auto f2 = (*hog)->SubmitSql("SELECT id FROM acct");  // cap: rejected
  auto f3 = (*other)->SubmitSql("SELECT id FROM acct");  // other session: ok
  auto r2 = f2.get();
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kOverloaded);
  release.store(true);
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f3.get().ok());
  EXPECT_GE(db.metrics()->Get("server.admission.rejected_session_cap"), 1);
  server.scheduler()->set_before_execute_hook(nullptr);
}

TEST(AdmissionTest, SessionTableFullAndShutdownRejections) {
  Database db;
  Seed(&db, 3);
  Server::Options opts;
  opts.max_sessions = 1;
  Server server(&db, opts);
  auto s1 = server.OpenSession();
  ASSERT_TRUE(s1.ok());
  auto s2 = server.OpenSession();
  ASSERT_FALSE(s2.ok());
  EXPECT_EQ(s2.status().code(), StatusCode::kOverloaded);

  server.Shutdown();
  auto s3 = server.OpenSession();
  ASSERT_FALSE(s3.ok());
  EXPECT_EQ(s3.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(server.active_sessions(), 0);
}

TEST(ConcurrencyTest, WriterTxnBlocksSerializableReaderUntilCommit) {
  Database db;
  Seed(&db, 10);
  Server server(&db);
  auto writer = server.OpenSession();
  auto reader = server.OpenSession();
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(reader.ok());

  ASSERT_TRUE((*writer)->Begin().ok());
  ASSERT_TRUE(
      (*writer)->ExecuteSql("UPDATE acct SET balance = 1.0").ok());

  // The serializable reader must not observe the mid-transaction state: its
  // S-lock waits for the writer's X lock.
  auto pending = (*reader)->SubmitSql(
      "SELECT id FROM acct WHERE balance < 50.0");
  EXPECT_EQ(pending.wait_for(std::chrono::milliseconds(200)),
            std::future_status::timeout);

  ASSERT_TRUE((*writer)->Commit().ok());
  auto rows = pending.get();
  ASSERT_TRUE(rows.ok());
  // Serializable outcome: the read ran entirely after the committed
  // transaction, so every row has the new balance.
  EXPECT_EQ(rows->relation.num_tuples(), 10);
}

TEST(ConcurrencyTest, DeadlockDetectedNotHung) {
  Database db;
  ASSERT_TRUE(db.ExecuteSql("CREATE TABLE t1 (a INT64)").ok());
  ASSERT_TRUE(db.ExecuteSql("CREATE TABLE t2 (a INT64)").ok());
  ASSERT_TRUE(db.ExecuteSql("INSERT INTO t1 VALUES (1)").ok());
  ASSERT_TRUE(db.ExecuteSql("INSERT INTO t2 VALUES (1)").ok());
  Server server(&db);
  auto sa = server.OpenSession();
  auto sb = server.OpenSession();
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());

  ASSERT_TRUE((*sa)->Begin().ok());
  ASSERT_TRUE((*sb)->Begin().ok());
  ASSERT_TRUE((*sa)->ExecuteSql("UPDATE t1 SET a = 2").ok());
  ASSERT_TRUE((*sb)->ExecuteSql("UPDATE t2 SET a = 2").ok());

  auto a_blocked = (*sa)->SubmitSql("UPDATE t2 SET a = 3");  // waits on sb
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto b_cross = (*sb)->ExecuteSql("UPDATE t1 SET a = 3");  // closes a cycle

  // One of the two must be the deadlock victim; neither may hang.
  auto a_result = a_blocked.get();
  const bool a_victim =
      !a_result.ok() && a_result.status().code() == StatusCode::kDeadlock;
  const bool b_victim =
      !b_cross.ok() && b_cross.status().code() == StatusCode::kDeadlock;
  EXPECT_TRUE(a_victim || b_victim);

  if ((*sa)->in_txn()) {
    EXPECT_TRUE((*sa)->Commit().ok());
  }
  if ((*sb)->in_txn()) {
    EXPECT_TRUE((*sb)->Commit().ok());
  }
}

TEST(ConcurrencyTest, SnapshotReadersNeverBlockRecordWriters) {
  Database db;
  Database::TxnPlaneOptions txn;
  txn.enable_versioning = true;
  txn.num_records = 64;
  txn.log_write_latency = std::chrono::microseconds(100);
  ASSERT_TRUE(db.EnableTransactions(txn).ok());

  Server server(&db);
  SessionOptions snap;
  snap.isolation = IsolationLevel::kSnapshot;
  auto writer = server.OpenSession();
  auto reader = server.OpenSession(snap);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(reader.ok());

  auto before = (*reader)->ReadRecord(7);
  ASSERT_TRUE(before.ok());

  // Writer holds record 7's X lock inside an open transaction...
  ASSERT_TRUE((*writer)->Begin().ok());
  ASSERT_TRUE((*writer)->UpdateRecord(7, "dirty-uncommitted").ok());

  // ...and the snapshot reader still completes instantly with the
  // committed (pre-update) value: no lock taken, no blocking either way.
  const auto t0 = std::chrono::steady_clock::now();
  auto during = (*reader)->ReadRecord(7);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(*during, *before);
  EXPECT_LT(elapsed, std::chrono::seconds(2));

  ASSERT_TRUE((*writer)->Commit().ok());
  auto after = (*reader)->ReadRecord(7);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->substr(0, 17), "dirty-uncommitted");
}

TEST(ConcurrencyTest, RowLocksLetPointUpdatesOnDistinctKeysRun) {
  Database db;
  Seed(&db, 10);
  Server server(&db);  // row_locks defaults on
  auto sa = server.OpenSession();
  auto sb = server.OpenSession();
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());

  ASSERT_TRUE((*sa)->Begin().ok());
  ASSERT_TRUE((*sb)->Begin().ok());
  ASSERT_TRUE(
      (*sa)->ExecuteSql("UPDATE acct SET balance = 1.0 WHERE id = 3").ok());

  // Distinct key: table IX locks are compatible, row locks disjoint — the
  // second writer runs to completion while the first's txn stays open.
  auto other = (*sb)->SubmitSql("UPDATE acct SET balance = 2.0 WHERE id = 4");
  ASSERT_EQ(other.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_TRUE(other.get().ok());

  // Same key: the row X lock serializes them until the holder commits.
  auto same = (*sb)->SubmitSql("UPDATE acct SET balance = 5.0 WHERE id = 3");
  EXPECT_EQ(same.wait_for(std::chrono::milliseconds(200)),
            std::future_status::timeout);
  ASSERT_TRUE((*sa)->Commit().ok());
  EXPECT_TRUE(same.get().ok());
  ASSERT_TRUE((*sb)->Commit().ok());

  ASSERT_TRUE(server.CloseSession((*sa)->id()).ok());
  ASSERT_TRUE(server.CloseSession((*sb)->id()).ok());
  EXPECT_GE(db.metrics()->Get("session.row_lock_statements"), 3);

  // The writes all landed.
  auto check = db.ExecuteSql("SELECT balance FROM acct WHERE id = 3");
  ASSERT_TRUE(check.ok());
}

TEST(ConcurrencyTest, SnapshotWriteConflictRollsBackAndSurfaces) {
  Database db;
  Database::TxnPlaneOptions txn;
  txn.enable_versioning = true;
  txn.num_records = 64;
  txn.log_write_latency = std::chrono::microseconds(0);
  ASSERT_TRUE(db.EnableTransactions(txn).ok());

  Server server(&db);
  SessionOptions snap;
  snap.isolation = IsolationLevel::kSnapshot;
  auto sa = server.OpenSession(snap);
  auto sb = server.OpenSession(snap);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());

  ASSERT_TRUE((*sa)->Begin().ok());
  ASSERT_TRUE((*sb)->Begin().ok());
  ASSERT_TRUE((*sa)->UpdateRecord(5, "first-writer").ok());

  // First writer wins: the competing snapshot writer gets an immediate
  // kConflict (no blocking) and its transaction is rolled back.
  Status lost = (*sb)->UpdateRecord(5, "second-writer");
  EXPECT_EQ(lost.code(), StatusCode::kConflict);
  EXPECT_FALSE((*sb)->in_txn());

  ASSERT_TRUE((*sa)->Commit().ok());
  auto value = (*sa)->ReadRecord(5);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->substr(0, 12), "first-writer");

  // The loser retries on a fresh transaction (fresh snapshot) and wins.
  ASSERT_TRUE((*sb)->Begin().ok());
  ASSERT_TRUE((*sb)->UpdateRecord(5, "retry-writer").ok());
  ASSERT_TRUE((*sb)->Commit().ok());

  ASSERT_TRUE(server.CloseSession((*sa)->id()).ok());
  ASSERT_TRUE(server.CloseSession((*sb)->id()).ok());
  const std::string json = db.MetricsJson();  // syncs txn-plane counters
  EXPECT_GE(db.metrics()->Get("session.conflicts"), 1);
  EXPECT_GE(db.metrics()->Get("txn.conflicts"), 1);
  EXPECT_GE(db.metrics()->Get("mvcc.conflicts"), 1);
  EXPECT_NE(json.find("mvcc.commits"), std::string::npos);
}

TEST(DifferentialTest, PointUpdatesSerialAndConcurrentAgree) {
  // Each id is point-updated exactly once, so the final table state is
  // order-independent: 1 session and 8 row-locked concurrent sessions must
  // produce identical fingerprints.
  const int kRows = 64;
  std::vector<std::string> updates;
  for (int i = 0; i < kRows; ++i) {
    updates.push_back("UPDATE acct SET balance = " +
                      std::to_string(1000.0 + i) + " WHERE id = " +
                      std::to_string(i));
  }

  Database serial_db;
  Seed(&serial_db, kRows);
  std::vector<std::string> serial_rows;
  {
    Server server(&serial_db);
    auto session = server.OpenSession();
    ASSERT_TRUE(session.ok());
    for (const auto& sql : updates) {
      ASSERT_TRUE((*session)->ExecuteSql(sql).ok());
    }
    serial_rows = TableFingerprint(&serial_db, "acct");
  }

  Database conc_db;
  Seed(&conc_db, kRows);
  {
    Server::Options opts;
    opts.scheduler.num_workers = 8;
    opts.scheduler.max_queue_depth = 256;
    Server server(&conc_db, opts);
    const int kSessions = 8;
    std::vector<Session*> sessions;
    for (int s = 0; s < kSessions; ++s) {
      auto session = server.OpenSession();
      ASSERT_TRUE(session.ok());
      sessions.push_back(*session);
    }
    std::vector<std::thread> clients;
    for (int s = 0; s < kSessions; ++s) {
      clients.emplace_back([&, s] {
        for (size_t i = static_cast<size_t>(s); i < updates.size();
             i += kSessions) {
          auto result =
              sessions[static_cast<size_t>(s)]->ExecuteSql(updates[i]);
          ASSERT_TRUE(result.ok()) << result.status().ToString();
        }
      });
    }
    for (auto& t : clients) t.join();
    // The fast path actually engaged: every statement was row-locked.
    server.Shutdown();
    EXPECT_GE(conc_db.metrics()->Get("session.row_lock_statements"), kRows);
  }
  EXPECT_EQ(TableFingerprint(&conc_db, "acct"), serial_rows);
  EXPECT_EQ(serial_rows.size(), static_cast<size_t>(kRows));
}

TEST(DifferentialTest, SerialAndConcurrentBatchesAgree) {
  // The same statement batch through 1 session and through 8 concurrent
  // sessions must leave identical table contents, and the read phase must
  // record identical executor metrics totals (merging statement shards
  // commutes, DESIGN.md §9/§10).
  const int kRows = 120;
  std::vector<std::string> inserts;
  for (int i = 0; i < kRows; ++i) {
    inserts.push_back("INSERT INTO acct VALUES (" + std::to_string(i) +
                      ", 'o" + std::to_string(i % 5) + "', " +
                      std::to_string(10.0 * i) + ")");
  }
  std::vector<std::string> selects;
  for (int i = 0; i < 24; ++i) {
    selects.push_back("SELECT id, balance FROM acct WHERE owner = 'o" +
                      std::to_string(i % 5) + "'");
  }

  auto filter_total = [](Database* db) {
    return db->metrics()->Get("exec.filter.rows_in") +
           db->metrics()->Get("exec.filter.rows_out");
  };

  // Serial run.
  Database serial_db;
  ASSERT_TRUE(serial_db.ExecuteSql(Ddl()).ok());
  int64_t serial_filter = 0;
  std::vector<std::string> serial_rows;
  {
    Server server(&serial_db);
    auto session = server.OpenSession();
    ASSERT_TRUE(session.ok());
    for (const auto& sql : inserts) ASSERT_TRUE((*session)->ExecuteSql(sql).ok());
    const int64_t before = filter_total(&serial_db);
    for (const auto& sql : selects) ASSERT_TRUE((*session)->ExecuteSql(sql).ok());
    serial_filter = filter_total(&serial_db) - before;
    serial_rows = TableFingerprint(&serial_db, "acct");
  }

  // Concurrent run: 8 sessions, each driven by its own client thread.
  Database conc_db;
  ASSERT_TRUE(conc_db.ExecuteSql(Ddl()).ok());
  {
    Server::Options opts;
    opts.scheduler.num_workers = 8;
    opts.scheduler.max_queue_depth = 256;
    Server server(&conc_db, opts);
    const int kSessions = 8;
    std::vector<Session*> sessions;
    for (int s = 0; s < kSessions; ++s) {
      auto session = server.OpenSession();
      ASSERT_TRUE(session.ok());
      sessions.push_back(*session);
    }
    auto run_slice = [&](const std::vector<std::string>& stmts) {
      std::vector<std::thread> clients;
      for (int s = 0; s < kSessions; ++s) {
        clients.emplace_back([&, s] {
          for (size_t i = static_cast<size_t>(s); i < stmts.size();
               i += kSessions) {
            auto result = sessions[static_cast<size_t>(s)]->ExecuteSql(
                stmts[i]);
            ASSERT_TRUE(result.ok()) << result.status().ToString();
          }
        });
      }
      for (auto& t : clients) t.join();
    };
    run_slice(inserts);  // barrier between phases: joins above
    const int64_t before = filter_total(&conc_db);
    run_slice(selects);
    const int64_t conc_filter = filter_total(&conc_db) - before;
    EXPECT_EQ(conc_filter, serial_filter);
  }
  EXPECT_EQ(TableFingerprint(&conc_db, "acct"), serial_rows);
  EXPECT_EQ(serial_rows.size(), static_cast<size_t>(kRows));
}

TEST(ShutdownTest, DrainFinishesInFlightBeforeStoppingServices) {
  Database db;
  Seed(&db, 50);
  Database::TxnPlaneOptions txn;
  txn.start_checkpointer = true;
  txn.log_write_latency = std::chrono::microseconds(100);
  ASSERT_TRUE(db.EnableTransactions(txn).ok());

  Server server(&db);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());
  std::vector<std::future<StatusOr<SqlResult>>> pending;
  for (int i = 0; i < 4; ++i) {
    pending.push_back((*session)->SubmitSql("SELECT id FROM acct"));
  }
  server.Shutdown();
  // Every admitted statement completed (drain ran before service stop).
  for (auto& f : pending) {
    auto result = f.get();
    if (result.ok()) {
      EXPECT_EQ(result->relation.num_tuples(), 50);
    }
  }
  // Post-shutdown submissions are refused, not queued.
  auto late = (*session)->SubmitSql("SELECT id FROM acct");
  EXPECT_EQ(late.get().status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(server.scheduler()->admitted_in_flight(), 0);
}

TEST(MetricsTest, ServerFamiliesAppearInDatabaseJson) {
  Database db;
  Seed(&db, 5);
  Server server(&db);
  auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->ExecuteSql("SELECT id FROM acct").ok());
  ASSERT_TRUE(server.CloseSession((*session)->id()).ok());
  const std::string json = db.MetricsJson();
  EXPECT_NE(json.find("server.sessions.opened"), std::string::npos);
  EXPECT_NE(json.find("server.sessions.active"), std::string::npos);
  EXPECT_NE(json.find("server.admission.admitted"), std::string::npos);
  EXPECT_NE(json.find("session.statements"), std::string::npos);
}

}  // namespace
}  // namespace mmdb
