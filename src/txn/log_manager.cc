#include "txn/log_manager.h"

#include <algorithm>

#include "common/check.h"

namespace mmdb {

GroupCommitLog::GroupCommitLog(std::vector<LogDevice*> devices,
                               GroupCommitLogOptions options)
    : options_(options) {
  MMDB_CHECK_MSG(!devices.empty(), "need at least one log device");
  page_size_ = devices[0]->page_size();
  for (LogDevice* d : devices) {
    MMDB_CHECK(d->page_size() == page_size_);
    auto stripe = std::make_unique<Stripe>();
    stripe->device = d;
    stripes_.push_back(std::move(stripe));
  }
}

GroupCommitLog::~GroupCommitLog() { Stop(); }

void GroupCommitLog::Start() {
  stop_.store(false);
  crash_.store(false);
  for (auto& stripe : stripes_) {
    stripe->flusher = std::thread(&GroupCommitLog::FlusherLoop, this,
                                  stripe.get());
  }
}

void GroupCommitLog::Stop() {
  if (stripes_.empty() || !stripes_[0]->flusher.joinable()) return;
  stop_.store(true);
  for (auto& stripe : stripes_) {
    stripe->cv.notify_all();
  }
  for (auto& stripe : stripes_) {
    if (stripe->flusher.joinable()) stripe->flusher.join();
  }
}

void GroupCommitLog::CrashStop() {
  if (stripes_.empty() || !stripes_[0]->flusher.joinable()) return;
  crash_.store(true);
  stop_.store(true);
  for (auto& stripe : stripes_) {
    stripe->cv.notify_all();
  }
  for (auto& stripe : stripes_) {
    if (stripe->flusher.joinable()) stripe->flusher.join();
    // The power failed: buffered-but-unwritten bytes are gone.
    std::unique_lock<std::mutex> lock(stripe->mu);
    stripe->buffer.clear();
    stripe->pending.clear();
    stripe->commit_waiting = false;
    stripe->force_upto = kInvalidLsn;
  }
  // Records that never reached a device are gone; they no longer hold the
  // durable horizon back. ship_log_ mirrors the devices and survives.
  std::unique_lock<std::mutex> ship(ship_mu_);
  inflight_.clear();
}

Lsn GroupCommitLog::Append(LogRecord rec) {
  return AppendInternal(std::move(rec), false, {});
}

Lsn GroupCommitLog::AppendCommit(LogRecord rec,
                                 const std::vector<TxnId>& deps) {
  return AppendInternal(std::move(rec), true, deps);
}

Lsn GroupCommitLog::AppendInternal(LogRecord rec, bool is_commit,
                                   const std::vector<TxnId>& deps) {
  const int64_t size = rec.SerializedSize();
  Lsn lsn;
  {
    // LSN assignment and inflight registration are atomic together, so the
    // durable-horizon scan can never miss a record that has an LSN but is
    // not yet visible in any stripe's pending queue.
    std::unique_lock<std::mutex> ship(ship_mu_);
    lsn = next_lsn_.fetch_add(size);
    inflight_.insert(lsn);
  }
  rec.lsn = lsn;
  logical_bytes_.fetch_add(size);

  Stripe& stripe = *stripes_[static_cast<size_t>(
      rec.txn_id >= 0 ? rec.txn_id % static_cast<int64_t>(stripes_.size())
                      : 0)];
  {
    std::unique_lock<std::mutex> lock(stripe.mu);
    rec.AppendTo(&stripe.buffer);
    PendingRecord pending;
    pending.lsn = lsn;
    pending.bytes_left = size;
    pending.is_commit = is_commit;
    pending.txn = rec.txn_id;
    pending.deps = deps;
    pending.record = std::move(rec);
    stripe.pending.push_back(std::move(pending));
    if (is_commit && !stripe.commit_waiting) {
      stripe.commit_waiting = true;
      stripe.oldest_commit = std::chrono::steady_clock::now();
    }
    {
      std::unique_lock<std::mutex> ship(ship_mu_);
      auto it = inflight_.find(lsn);
      if (it != inflight_.end()) inflight_.erase(it);  // CrashStop may clear
    }
  }
  stripe.cv.notify_all();
  return lsn;
}

int64_t GroupCommitLog::SafeBytes(Stripe* stripe) {
  // Caller holds stripe->mu.
  int64_t safe = 0;
  std::unique_lock<std::mutex> dlock(durable_mu_);
  for (const PendingRecord& rec : stripe->pending) {
    if (rec.is_commit) {
      for (TxnId dep : rec.deps) {
        if (!durable_commits_.count(dep)) return safe;
      }
    }
    safe += rec.bytes_left;
  }
  return safe;
}

void GroupCommitLog::AccountFlushed(Stripe* stripe, int64_t n,
                                    int64_t* commits_in_write) {
  // Caller holds stripe->mu.
  std::vector<TxnId> newly_durable;
  std::vector<LogRecord> newly_shipped;
  while (n > 0) {
    MMDB_CHECK(!stripe->pending.empty());
    PendingRecord& rec = stripe->pending.front();
    const int64_t take = std::min(n, rec.bytes_left);
    rec.bytes_left -= take;
    n -= take;
    if (rec.bytes_left == 0) {
      if (rec.is_commit) {
        newly_durable.push_back(rec.txn);
        ++*commits_in_write;
      }
      newly_shipped.push_back(std::move(rec.record));
      stripe->pending.pop_front();
    }
  }
  if (!newly_shipped.empty()) {
    std::unique_lock<std::mutex> ship(ship_mu_);
    for (LogRecord& r : newly_shipped) {
      const Lsn lsn = r.lsn;
      ship_log_.emplace(lsn, std::move(r));
    }
  }
  {
    std::unique_lock<std::mutex> dlock(durable_mu_);
    for (TxnId t : newly_durable) durable_commits_.insert(t);
    commit_count_ += static_cast<int64_t>(newly_durable.size());
    // Wake WaitCommitDurable AND WaitLsnDurable waiters: durability
    // advanced even when no commit completed.
    durable_cv_.notify_all();
  }
  if (!newly_durable.empty()) {
    // Other stripes may have pages blocked on these commits.
    for (auto& other : stripes_) {
      if (other.get() != stripe) other->cv.notify_all();
    }
  }
  // Re-examine whether commits are still waiting.
  bool commit_left = false;
  for (const PendingRecord& rec : stripe->pending) {
    if (rec.is_commit) {
      commit_left = true;
      break;
    }
  }
  if (!commit_left) {
    stripe->commit_waiting = false;
  } else {
    stripe->oldest_commit = std::chrono::steady_clock::now();
  }
}

void GroupCommitLog::FlusherLoop(Stripe* stripe) {
  std::unique_lock<std::mutex> lock(stripe->mu);
  while (true) {
    if (crash_.load()) return;  // power failure: drop everything buffered
    const bool stopping = stop_.load();
    int64_t safe = SafeBytes(stripe);

    const bool full_page = safe >= page_size_;
    bool force_partial = false;
    // WaitLsnDurable pressure: push out partial pages while records at or
    // below the fence are still buffered.
    if (safe > 0 && !stripe->pending.empty() &&
        stripe->force_upto != kInvalidLsn &&
        stripe->pending.front().lsn <= stripe->force_upto) {
      force_partial = true;
    }
    if (safe > 0 && stripe->commit_waiting) {
      if (!options_.group_commit || stopping) {
        force_partial = true;
      } else {
        const auto deadline = stripe->oldest_commit + options_.flush_timeout;
        if (std::chrono::steady_clock::now() >= deadline) {
          force_partial = true;
        }
      }
    }
    if (stopping && safe > 0) force_partial = true;

    if (full_page || force_partial) {
      int64_t n = std::min(safe, page_size_);
      if (!options_.group_commit) {
        // Strict one-log-I/O-per-commit baseline: never let commits that
        // queued up during the previous write share this page. Cut the
        // chunk right after the first commit record.
        int64_t upto = 0;
        for (const PendingRecord& rec : stripe->pending) {
          upto += rec.bytes_left;
          if (upto >= n) break;
          if (rec.is_commit) {
            n = upto;
            break;
          }
        }
      }
      std::string chunk = stripe->buffer.substr(0, static_cast<size_t>(n));
      stripe->buffer.erase(0, static_cast<size_t>(n));
      int64_t commits_in_write = 0;
      // Device write without the stripe lock: appends continue meanwhile.
      // Pending accounting happens after the write completes (durability).
      lock.unlock();
      bool written = false;
      for (int attempt = 0; attempt < kDefaultMaxIoAttempts; ++attempt) {
        if (stripe->device->WritePage(chunk).ok()) {
          written = true;
          break;
        }
        io_retries_.fetch_add(1);
        // Exponential backoff, capped well under the device latency.
        std::this_thread::sleep_for(std::chrono::microseconds(1 << attempt));
      }
      lock.lock();
      if (!written) {
        // Nothing persisted and nothing lost: put the chunk back at the
        // front (racing appends landed after it) and try again later.
        stripe->buffer.insert(0, chunk);
        write_failures_.fetch_add(1);
        stripe->cv.wait_for(lock, std::chrono::microseconds(500));
        continue;
      }
      AccountFlushed(stripe, n, &commits_in_write);
      if (commits_in_write > 0) {
        std::unique_lock<std::mutex> dlock(durable_mu_);
        ++writes_with_commits_;
        commits_grouped_ += commits_in_write;
      }
      continue;  // there may be more to flush
    }

    if (stopping && stripe->pending.empty()) return;
    if (stopping) {
      // Remaining bytes are blocked on cross-stripe dependencies; wait for
      // them to clear rather than spinning.
      stripe->cv.wait_for(lock, std::chrono::microseconds(200));
      continue;
    }
    stripe->cv.wait_for(lock, options_.group_commit
                                  ? options_.flush_timeout
                                  : std::chrono::microseconds(200));
  }
}

void GroupCommitLog::WaitCommitDurable(TxnId txn) {
  // Nudge this txn's stripe so a partial page is not stuck on the timer.
  Stripe& stripe = *stripes_[static_cast<size_t>(
      txn % static_cast<int64_t>(stripes_.size()))];
  stripe.cv.notify_all();
  std::unique_lock<std::mutex> lock(durable_mu_);
  durable_cv_.wait(lock, [&] { return durable_commits_.count(txn) != 0; });
}

bool GroupCommitLog::IsCommitDurable(TxnId txn) const {
  std::unique_lock<std::mutex> lock(durable_mu_);
  return durable_commits_.count(txn) != 0;
}

void GroupCommitLog::WaitLsnDurable(Lsn lsn) {
  // Raise the flush fence on every stripe still holding records <= lsn.
  auto anything_pending = [&]() {
    for (auto& stripe : stripes_) {
      std::unique_lock<std::mutex> slock(stripe->mu);
      if (!stripe->pending.empty() && stripe->pending.front().lsn <= lsn) {
        stripe->force_upto = std::max(stripe->force_upto, lsn);
        stripe->cv.notify_all();
        return true;
      }
    }
    return false;
  };
  while (anything_pending()) {
    std::unique_lock<std::mutex> dlock(durable_mu_);
    durable_cv_.wait_for(dlock, std::chrono::microseconds(200));
  }
}

std::vector<LogRecord> GroupCommitLog::ReadAllForRecovery(
    LogReadStats* stats) {
  // §5.2: "a single log is recreated by merging the log fragments, as in a
  // sort-merge" — our merge key is the global LSN.
  std::vector<LogRecord> all;
  for (auto& stripe : stripes_) {
    LogDevice::ReadStats rstats;
    std::string bytes = stripe->device->ReadAll(&rstats);
    LogParseStats pstats;
    std::vector<LogRecord> recs = LogRecord::ParseAll(
        bytes.data(), static_cast<int64_t>(bytes.size()), &pstats);
    if (stats != nullptr) {
      stats->corrupt_records_skipped += pstats.corrupt_skipped;
      stats->torn_tail_bytes += pstats.torn_tail_bytes;
      stats->unreadable_pages += rstats.unreadable_pages;
      stats->retries += rstats.retries;
    }
    all.insert(all.end(), std::make_move_iterator(recs.begin()),
               std::make_move_iterator(recs.end()));
  }
  std::sort(all.begin(), all.end(),
            [](const LogRecord& a, const LogRecord& b) { return a.lsn < b.lsn; });
  return all;
}

Lsn GroupCommitLog::DurableHorizon() const {
  // Cut order matters: take the ship_mu_ snapshot (inflight records + the
  // LSN counter) FIRST, then scan the stripes. Any record assigned before
  // the cut is either in inflight_ (seen here), or already stripe-pending
  // (seen by the scan below unless it became durable or was dropped — both
  // of which stop constraining the horizon). Any record assigned after the
  // cut has lsn >= `frontier`. Never hold ship_mu_ across a stripe lock
  // (appends take stripe.mu then ship_mu_).
  Lsn horizon;
  {
    std::unique_lock<std::mutex> ship(ship_mu_);
    horizon = next_lsn_.load();
    if (!inflight_.empty()) horizon = std::min(horizon, *inflight_.begin());
  }
  for (const auto& stripe : stripes_) {
    std::unique_lock<std::mutex> lock(stripe->mu);
    // Stripe queues are not LSN-sorted (the counter fetch and the queue
    // insert race across threads), so scan them all — the front is not
    // necessarily the minimum.
    for (const PendingRecord& rec : stripe->pending) {
      horizon = std::min(horizon, rec.lsn);
    }
  }
  return horizon;
}

std::vector<LogRecord> GroupCommitLog::ReadDurableRange(Lsn from, Lsn upto) {
  std::vector<LogRecord> out;
  std::unique_lock<std::mutex> ship(ship_mu_);
  for (auto it = ship_log_.lower_bound(from);
       it != ship_log_.end() && it->first < upto; ++it) {
    out.push_back(it->second);
  }
  return out;
}

Wal::Stats GroupCommitLog::stats() const {
  Stats s;
  for (const auto& stripe : stripes_) {
    s.device_writes += stripe->device->num_pages();
    s.device_bytes += stripe->device->bytes_written();
  }
  s.logical_bytes = logical_bytes_.load();
  s.io_retries = io_retries_.load();
  s.write_failures = write_failures_.load();
  std::unique_lock<std::mutex> lock(durable_mu_);
  s.commits = commit_count_;
  s.avg_commit_group =
      writes_with_commits_ == 0
          ? 0
          : double(commits_grouped_) / double(writes_with_commits_);
  return s;
}

}  // namespace mmdb
