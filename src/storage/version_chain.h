#ifndef MMDB_STORAGE_VERSION_CHAIN_H_
#define MMDB_STORAGE_VERSION_CHAIN_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mmdb {

/// End timestamp of a version whose overwriting transaction has not yet
/// committed: the version is still the newest COMMITTED value, visible to
/// every read timestamp at/after its begin.
inline constexpr uint64_t kPendingTs = ~uint64_t{0};

/// One committed version of a record, newest-first in the chain. `begin` is
/// the commit timestamp of the transaction that created this value; `end`
/// is the commit timestamp of the transaction that overwrote it (kPendingTs
/// while that overwrite is uncommitted). A version is visible to read
/// timestamp T iff begin <= T < end.
struct VersionNode {
  uint64_t begin = 0;
  uint64_t end = kPendingTs;
  std::string value;
  std::unique_ptr<VersionNode> next;  ///< next-older version
};

/// Per-record version-chain head (DESIGN.md §11). The record's CURRENT
/// value lives in-place in the RecoverableStore; the chain holds only the
/// superseded history. `newest_begin` is the commit timestamp of the
/// in-place value (0 = "since the beginning of time", i.e. loaded or
/// recovered before this chain table existed). `owner_txn` is the id of
/// the single in-flight writer that owns the record, or kNoOwner.
struct RecordVersions {
  static constexpr int64_t kNoOwner = -1;  ///< matches txn's kInvalidTxn

  uint64_t newest_begin = 0;
  int64_t owner_txn = kNoOwner;
  std::unique_ptr<VersionNode> history;
};

/// Direct-indexed table of version-chain heads, one per record of a
/// fixed-size store, with striped mutexes so chain operations on different
/// records rarely contend. Purely volatile: rebuilt empty after a crash
/// (open snapshots do not survive restarts).
class VersionChainTable {
 public:
  explicit VersionChainTable(int64_t num_records)
      : slots_(static_cast<size_t>(num_records)) {}

  VersionChainTable(const VersionChainTable&) = delete;
  VersionChainTable& operator=(const VersionChainTable&) = delete;

  int64_t num_records() const { return static_cast<int64_t>(slots_.size()); }

  RecordVersions& slot(int64_t record_id) {
    return slots_[static_cast<size_t>(record_id)];
  }
  const RecordVersions& slot(int64_t record_id) const {
    return slots_[static_cast<size_t>(record_id)];
  }

  std::mutex& stripe(int64_t record_id) const {
    return stripes_[static_cast<size_t>(record_id) % kStripes];
  }

  /// Number of history nodes across all chains (tests / introspection).
  /// Takes every stripe; not for hot paths.
  int64_t CountNodes() const {
    int64_t n = 0;
    for (int64_t r = 0; r < num_records(); ++r) {
      std::unique_lock<std::mutex> lock(stripe(r));
      for (const VersionNode* v = slots_[static_cast<size_t>(r)].history.get();
           v != nullptr; v = v->next.get()) {
        ++n;
      }
    }
    return n;
  }

  /// Number of records with a non-empty chain (tests / introspection).
  int64_t CountChains() const {
    int64_t n = 0;
    for (int64_t r = 0; r < num_records(); ++r) {
      std::unique_lock<std::mutex> lock(stripe(r));
      if (slots_[static_cast<size_t>(r)].history != nullptr) ++n;
    }
    return n;
  }

 private:
  static constexpr size_t kStripes = 64;
  std::vector<RecordVersions> slots_;
  mutable std::array<std::mutex, kStripes> stripes_;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_VERSION_CHAIN_H_
