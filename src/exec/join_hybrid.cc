#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "cost/join_cost.h"
#include "exec/join.h"
#include "exec/parallel.h"
#include "exec/partitioner.h"
#include "storage/heap_file.h"

namespace mmdb {

namespace {

using exec_internal::JoinHashTable;

StatusOr<Relation> HybridHashJoinImpl(const Relation& r, const Relation& s,
                                      const JoinSpec& spec, ExecContext* ctx,
                                      JoinRunStats* stats, int depth);

/// The (q, B) split used by one hybrid invocation — computed identically by
/// the serial and the parallel path so their partitioning (and hence their
/// simulated costs) match bit for bit.
HybridSplit ComputeShavedSplit(const Relation& r, ExecContext* ctx) {
  const int64_t r_pages = std::max<int64_t>(1, r.NumPages(ctx->page_size()));
  HybridSplit split =
      SolveHybridSplit(r_pages, ctx->memory_pages, ctx->fudge);
  if (split.q < 1.0) {
    // The analytic q fills memory EXACTLY, so a positive fluctuation of the
    // hash split (~sqrt(n) tuples, §3.3's central-limit argument) would
    // overflow R_0 and force the expensive save-S_0 fallback. Shave q by
    // 4 sigma of the binomial split so overflow is a true skew signal, not
    // noise.
    const double expected =
        split.q * double(std::max<int64_t>(1, r.num_tuples()));
    split.q = std::max(0.0, split.q * (1.0 - 4.0 / std::sqrt(expected + 1.0)));
  }
  return split;
}

/// Joins a spilled (R_b, S_b) pair. If R_b's hash table fits, builds and
/// probes directly; otherwise applies the hybrid join recursively (§3.3:
/// "if we err slightly we can always apply the hybrid hash join
/// recursively, thereby adding an extra pass for the overflow tuples").
Status JoinSpilledPair(std::vector<Row> r_rows, std::vector<Row> s_rows,
                       const Schema& rs, const Schema& ss,
                       const JoinSpec& spec, ExecContext* ctx,
                       JoinRunStats* stats, int depth, Relation* out) {
  const int64_t capacity =
      std::max<int64_t>(1, ctx->TuplesInPages(rs, ctx->memory_pages));
  if (static_cast<int64_t>(r_rows.size()) <= capacity ||
      depth >= ctx->max_recursion_depth) {
    JoinHashTable table(spec.left_column, ctx->clock);
    for (Row& row : r_rows) {
      ctx->clock->Hash();
      ctx->clock->Move();
      table.Insert(std::move(row));
    }
    for (const Row& row : s_rows) {
      ctx->clock->Hash();
      table.Probe(row[static_cast<size_t>(spec.right_column)],
                  [&](const Row& r_row) {
                    exec_internal::EmitJoined(r_row, row, out);
                  });
    }
    return Status::OK();
  }
  // Recursive application with a fresh hash function (level = depth + 1).
  Relation r_rel(rs, std::move(r_rows));
  Relation s_rel(ss, std::move(s_rows));
  JoinRunStats child_stats;
  MMDB_ASSIGN_OR_RETURN(
      Relation child,
      HybridHashJoinImpl(r_rel, s_rel, spec, ctx, &child_stats, depth + 1));
  if (stats != nullptr) {
    stats->recursion_depth =
        std::max(stats->recursion_depth, child_stats.recursion_depth);
  }
  for (Row& row : child.mutable_rows()) {
    out->Add(std::move(row));
  }
  return Status::OK();
}

StatusOr<Relation> HybridHashJoinImpl(const Relation& r, const Relation& s,
                                      const JoinSpec& spec, ExecContext* ctx,
                                      JoinRunStats* stats, int depth) {
  const Schema& rs = r.schema();
  const Schema& ss = s.schema();
  Relation out(Schema::Concat(rs, ss));
  if (stats != nullptr) stats->recursion_depth = depth;

  HybridSplit split = ComputeShavedSplit(r, ctx);
  const int64_t b = split.q >= 1.0 ? 0 : split.num_partitions;
  if (stats != nullptr) {
    stats->q = split.q;
    stats->partitions = b;
  }

  // Phase 1 over R: partition 0 builds in memory, 1..B spill.
  // With a single output buffer the writes are sequential (§3.8 footnote).
  const IoKind spill_kind = b <= 1 ? IoKind::kSequential : IoKind::kRandom;
  HashPartitioner partitioner = HashPartitioner::Hybrid(
      split.q, b, static_cast<uint32_t>(depth));

  JoinHashTable resident(spec.left_column, ctx->clock);
  const int64_t resident_capacity = std::max<int64_t>(
      1, ctx->TuplesInPages(rs, std::max<int64_t>(1, ctx->memory_pages - b)));
  std::unique_ptr<PartitionWriterSet> r_spill;
  std::unique_ptr<PartitionWriterSet> r_overflow;
  if (b > 0) {
    r_spill = std::make_unique<PartitionWriterSet>(ctx, rs, b, spill_kind,
                                                   "hybrid_r");
  }

  for (const Row& row : r.rows()) {
    ctx->clock->Hash();
    const Value& key = row[static_cast<size_t>(spec.left_column)];
    const int64_t p = partitioner.PartitionOf(key);
    if (p == 0) {
      if (resident.size() < resident_capacity) {
        ctx->clock->Move();
        resident.Insert(row);
      } else {
        // R_0 overflow: siphon the excess to its own file; matching S_0
        // tuples are saved below and the pair joins recursively.
        if (r_overflow == nullptr) {
          r_overflow = std::make_unique<PartitionWriterSet>(
              ctx, rs, 1, spill_kind, "hybrid_r_ovf");
        }
        MMDB_RETURN_IF_ERROR(r_overflow->Append(0, row));
      }
    } else {
      MMDB_RETURN_IF_ERROR(r_spill->Append(p - 1, row));
    }
  }
  if (r_spill != nullptr) MMDB_RETURN_IF_ERROR(r_spill->FinishAll());
  if (r_overflow != nullptr) MMDB_RETURN_IF_ERROR(r_overflow->FinishAll());

  // Phase 1 over S: bucket 0 probes immediately; the rest spills.
  std::unique_ptr<PartitionWriterSet> s_spill;
  std::unique_ptr<PartitionWriterSet> s0_saved;
  if (b > 0) {
    s_spill = std::make_unique<PartitionWriterSet>(ctx, ss, b, spill_kind,
                                                   "hybrid_s");
  }
  if (r_overflow != nullptr) {
    s0_saved = std::make_unique<PartitionWriterSet>(ctx, ss, 1, spill_kind,
                                                    "hybrid_s0_saved");
  }
  for (const Row& row : s.rows()) {
    ctx->clock->Hash();
    const Value& key = row[static_cast<size_t>(spec.right_column)];
    const int64_t p = partitioner.PartitionOf(key);
    if (p == 0) {
      resident.Probe(key, [&](const Row& r_row) {
        exec_internal::EmitJoined(r_row, row, &out);
      });
      if (s0_saved != nullptr) {
        MMDB_RETURN_IF_ERROR(s0_saved->Append(0, row));
      }
    } else {
      MMDB_RETURN_IF_ERROR(s_spill->Append(p - 1, row));
    }
  }
  if (s_spill != nullptr) MMDB_RETURN_IF_ERROR(s_spill->FinishAll());
  if (s0_saved != nullptr) MMDB_RETURN_IF_ERROR(s0_saved->FinishAll());

  // Phase 2: join each spilled pair.
  if (b > 0) {
    auto r_parts = r_spill->Release();
    auto s_parts = s_spill->Release();
    for (int64_t i = 0; i < b; ++i) {
      const auto& rp = r_parts[static_cast<size_t>(i)];
      const auto& sp = s_parts[static_cast<size_t>(i)];
      if (rp.records == 0 || sp.records == 0) {
        ctx->disk->DeleteFile(rp.file);
        ctx->disk->DeleteFile(sp.file);
        continue;
      }
      MMDB_ASSIGN_OR_RETURN(std::vector<Row> r_rows,
                            ReadAndDeletePartition(ctx, rs, rp));
      MMDB_ASSIGN_OR_RETURN(std::vector<Row> s_rows,
                            ReadAndDeletePartition(ctx, ss, sp));
      MMDB_RETURN_IF_ERROR(JoinSpilledPair(std::move(r_rows),
                                           std::move(s_rows), rs, ss, spec,
                                           ctx, stats, depth, &out));
    }
  }

  // Overflow of the resident partition, if any.
  if (r_overflow != nullptr) {
    auto ovf = r_overflow->Release();
    auto saved = s0_saved->Release();
    MMDB_ASSIGN_OR_RETURN(std::vector<Row> r_rows,
                          ReadAndDeletePartition(ctx, rs, ovf[0]));
    MMDB_ASSIGN_OR_RETURN(std::vector<Row> s_rows,
                          ReadAndDeletePartition(ctx, ss, saved[0]));
    MMDB_RETURN_IF_ERROR(JoinSpilledPair(std::move(r_rows), std::move(s_rows),
                                         rs, ss, spec, ctx, stats, depth,
                                         &out));
  }

  if (stats != nullptr) stats->output_tuples = out.num_tuples();
  return out;
}

/// The DOP > 1 top-level hybrid (recursive overflow handling stays serial
/// inside each worker: worker contexts have dop = 1). Charge-for-charge it
/// mirrors HybridHashJoinImpl at depth 0:
///  * the partitioning hash of every R/S tuple is charged during the
///    morsel-parallel partition-id scan;
///  * the resident partition R_0 is built serially in input order, so the
///    resident/overflow split — and therefore every downstream comparison
///    count — is identical to the serial run;
///  * spilled partitions are written by one task each (input order →
///    byte-identical spill files), and phase 2 runs one task per pair with
///    results concatenated in partition order.
StatusOr<Relation> HybridHashJoinParallel(const Relation& r,
                                          const Relation& s,
                                          const JoinSpec& spec,
                                          ExecContext* ctx,
                                          JoinRunStats* stats) {
  const Schema& rs = r.schema();
  const Schema& ss = s.schema();
  Relation out(Schema::Concat(rs, ss));
  if (stats != nullptr) stats->recursion_depth = 0;

  HybridSplit split = ComputeShavedSplit(r, ctx);
  const int64_t b = split.q >= 1.0 ? 0 : split.num_partitions;
  if (stats != nullptr) {
    stats->q = split.q;
    stats->partitions = b;
  }

  const IoKind spill_kind = b <= 1 ? IoKind::kSequential : IoKind::kRandom;
  HashPartitioner partitioner = HashPartitioner::Hybrid(split.q, b, 0);

  // Phase 1 over R: parallel partition-id scan (charges the Hash per
  // tuple), then resident build in input order + one spill task per
  // partition.
  std::vector<int32_t> r_pids;
  MMDB_RETURN_IF_ERROR(ComputePartitionIds(
      ctx, r.rows(),
      [&](const Row& row) {
        return partitioner.PartitionOf(
            row[static_cast<size_t>(spec.left_column)]);
      },
      &r_pids));
  const std::vector<std::vector<int64_t>> r_groups =
      GroupIndicesByPartition(r_pids, b + 1);

  JoinHashTable resident(spec.left_column, ctx->clock);
  const int64_t resident_capacity = std::max<int64_t>(
      1, ctx->TuplesInPages(rs, std::max<int64_t>(1, ctx->memory_pages - b)));
  std::unique_ptr<PartitionWriterSet> r_spill;
  std::unique_ptr<PartitionWriterSet> r_overflow;
  if (b > 0) {
    r_spill = std::make_unique<PartitionWriterSet>(ctx, rs, b, spill_kind,
                                                   "hybrid_r");
  }
  for (int64_t idx : r_groups[0]) {
    const Row& row = r.rows()[static_cast<size_t>(idx)];
    if (resident.size() < resident_capacity) {
      ctx->clock->Move();
      resident.Insert(row);
    } else {
      if (r_overflow == nullptr) {
        r_overflow = std::make_unique<PartitionWriterSet>(
            ctx, rs, 1, spill_kind, "hybrid_r_ovf");
      }
      MMDB_RETURN_IF_ERROR(r_overflow->Append(0, row));
    }
  }
  if (b > 0) {
    MMDB_RETURN_IF_ERROR(
        ParallelDistribute(ctx, r.rows(), r_groups, 1, r_spill.get()));
  }
  if (r_spill != nullptr) MMDB_RETURN_IF_ERROR(r_spill->FinishAll());
  if (r_overflow != nullptr) MMDB_RETURN_IF_ERROR(r_overflow->FinishAll());

  // Phase 1 over S: parallel partition-id scan; bucket 0 probes the (now
  // read-only) resident table morsel-parallel with matches concatenated in
  // morsel order — the same emission order as the serial S scan.
  std::vector<int32_t> s_pids;
  MMDB_RETURN_IF_ERROR(ComputePartitionIds(
      ctx, s.rows(),
      [&](const Row& row) {
        return partitioner.PartitionOf(
            row[static_cast<size_t>(spec.right_column)]);
      },
      &s_pids));
  const std::vector<std::vector<int64_t>> s_groups =
      GroupIndicesByPartition(s_pids, b + 1);

  std::unique_ptr<PartitionWriterSet> s_spill;
  std::unique_ptr<PartitionWriterSet> s0_saved;
  if (b > 0) {
    s_spill = std::make_unique<PartitionWriterSet>(ctx, ss, b, spill_kind,
                                                   "hybrid_s");
  }
  if (r_overflow != nullptr) {
    s0_saved = std::make_unique<PartitionWriterSet>(ctx, ss, 1, spill_kind,
                                                    "hybrid_s0_saved");
  }
  {
    const std::vector<int64_t>& s0 = s_groups[0];
    const std::vector<IndexRange> morsels =
        MorselRanges(static_cast<int64_t>(s0.size()));
    std::vector<std::vector<Row>> emitted(morsels.size());
    MMDB_RETURN_IF_ERROR(ParallelFor(
        ctx, static_cast<int64_t>(morsels.size()),
        [&](ExecContext* wctx, int, int64_t m) {
          std::vector<Row>& local = emitted[static_cast<size_t>(m)];
          const IndexRange range = morsels[static_cast<size_t>(m)];
          for (int64_t i = range.begin; i < range.end; ++i) {
            const Row& row =
                s.rows()[static_cast<size_t>(s0[static_cast<size_t>(i)])];
            resident.ProbeWith(
                wctx->clock, row[static_cast<size_t>(spec.right_column)],
                [&](const Row& r_row) {
                  local.push_back(ConcatRows(r_row, row));
                });
          }
          return Status::OK();
        }));
    for (std::vector<Row>& batch : emitted) {
      for (Row& row : batch) {
        out.Add(std::move(row));
      }
    }
    if (s0_saved != nullptr) {
      for (int64_t idx : s0) {
        MMDB_RETURN_IF_ERROR(
            s0_saved->Append(0, s.rows()[static_cast<size_t>(idx)]));
      }
    }
  }
  if (b > 0) {
    MMDB_RETURN_IF_ERROR(
        ParallelDistribute(ctx, s.rows(), s_groups, 1, s_spill.get()));
  }
  if (s_spill != nullptr) MMDB_RETURN_IF_ERROR(s_spill->FinishAll());
  if (s0_saved != nullptr) MMDB_RETURN_IF_ERROR(s0_saved->FinishAll());

  // Phase 2: one task per spilled pair; per-pair outputs concatenated in
  // partition order (the serial emission order).
  if (b > 0) {
    auto r_parts = r_spill->Release();
    auto s_parts = s_spill->Release();
    std::vector<Relation> partial(static_cast<size_t>(b));
    std::vector<int> depths(static_cast<size_t>(b), 0);
    MMDB_RETURN_IF_ERROR(ParallelFor(
        ctx, b, [&](ExecContext* wctx, int, int64_t i) {
          const auto& rp = r_parts[static_cast<size_t>(i)];
          const auto& sp = s_parts[static_cast<size_t>(i)];
          if (rp.records == 0 || sp.records == 0) {
            wctx->disk->DeleteFile(rp.file);
            wctx->disk->DeleteFile(sp.file);
            return Status::OK();
          }
          MMDB_ASSIGN_OR_RETURN(std::vector<Row> r_rows,
                                ReadAndDeletePartition(wctx, rs, rp));
          MMDB_ASSIGN_OR_RETURN(std::vector<Row> s_rows,
                                ReadAndDeletePartition(wctx, ss, sp));
          Relation local(out.schema());
          JoinRunStats local_stats;
          MMDB_RETURN_IF_ERROR(JoinSpilledPair(
              std::move(r_rows), std::move(s_rows), rs, ss, spec, wctx,
              &local_stats, 0, &local));
          depths[static_cast<size_t>(i)] = local_stats.recursion_depth;
          partial[static_cast<size_t>(i)] = std::move(local);
          return Status::OK();
        }));
    for (Relation& p : partial) {
      for (Row& row : p.mutable_rows()) {
        out.Add(std::move(row));
      }
    }
    if (stats != nullptr) {
      for (int d : depths) {
        stats->recursion_depth = std::max(stats->recursion_depth, d);
      }
    }
  }

  // Overflow of the resident partition, if any (serial, like the tail of
  // the serial implementation).
  if (r_overflow != nullptr) {
    auto ovf = r_overflow->Release();
    auto saved = s0_saved->Release();
    MMDB_ASSIGN_OR_RETURN(std::vector<Row> r_rows,
                          ReadAndDeletePartition(ctx, rs, ovf[0]));
    MMDB_ASSIGN_OR_RETURN(std::vector<Row> s_rows,
                          ReadAndDeletePartition(ctx, ss, saved[0]));
    MMDB_RETURN_IF_ERROR(JoinSpilledPair(std::move(r_rows), std::move(s_rows),
                                         rs, ss, spec, ctx, stats, 0, &out));
  }

  if (stats != nullptr) stats->output_tuples = out.num_tuples();
  return out;
}

}  // namespace

StatusOr<Relation> HybridHashJoin(const Relation& r, const Relation& s,
                                  const JoinSpec& spec, ExecContext* ctx,
                                  JoinRunStats* stats) {
  if (ctx->dop > 1) {
    return HybridHashJoinParallel(r, s, spec, ctx, stats);
  }
  return HybridHashJoinImpl(r, s, spec, ctx, stats, 0);
}

}  // namespace mmdb
