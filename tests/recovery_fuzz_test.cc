// Randomized crash-recovery property test: a reference map tracks what the
// database MUST contain (committed values only), while random transactions
// commit, abort, or are abandoned in flight, interleaved with random fuzzy
// checkpoints. After a crash + recovery, every record must equal the
// reference exactly — across several crash-recover generations in one run.

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/check.h"
#include "common/random.h"
#include "txn/checkpoint.h"
#include "txn/recovery.h"
#include "txn/transaction_manager.h"

namespace mmdb {
namespace {

using std::chrono::microseconds;

struct FuzzParam {
  uint64_t seed;
  int txns_per_generation;
  int generations;
};

class RecoveryFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(RecoveryFuzzTest, RecoveredStateEqualsReference) {
  const FuzzParam param = GetParam();
  Random rng(param.seed);

  constexpr int64_t kRecords = 64;
  constexpr int32_t kRecordSize = 24;
  SimulatedDisk disk(256);
  StableMemory stable(1 << 20);
  LogDevice device(256, microseconds(0));
  RecoverableStore store(&disk, kRecords, kRecordSize, 256);
  FirstUpdateTable fut(&stable, store.num_pages());
  auto locks = std::make_unique<LockManager>();
  GroupCommitLogOptions gopts;
  gopts.flush_timeout = microseconds(100);
  GroupCommitLog wal({&device}, gopts);
  wal.Start();
  auto tm = std::make_unique<TransactionManager>(&store, locks.get(),
                                                 &wal, &fut);
  Checkpointer checkpointer(&store, &fut, &wal);

  // The committed truth.
  std::map<int64_t, std::string> reference;
  for (int64_t r = 0; r < kRecords; ++r) {
    reference[r] = std::string(kRecordSize, '\0');
  }

  auto value_for = [&](TxnId txn, int64_t record, int step) {
    std::string v(kRecordSize, '\0');
    std::snprintf(v.data(), v.size(), "t%lld.s%d.r%lld",
                  static_cast<long long>(txn), step,
                  static_cast<long long>(record));
    return v;
  };

  for (int gen = 0; gen < param.generations; ++gen) {
    bool abandoned = false;
    for (int t = 0; t < param.txns_per_generation; ++t) {
      const TxnId txn = tm->Begin();
      // 1-4 updates over random records (ordered to avoid deadlock — this
      // test is single-threaded anyway).
      const int updates = 1 + int(rng.Uniform(4));
      std::map<int64_t, std::string> writes;
      bool failed = false;
      for (int u = 0; u < updates && !failed; ++u) {
        const int64_t record = int64_t(rng.Uniform(kRecords));
        const std::string value = value_for(txn, record, u);
        if (!tm->Update(txn, record, value).ok()) {
          failed = true;
          break;
        }
        writes[record] = value;
      }
      ASSERT_FALSE(failed);
      const double dice = rng.NextDouble();
      if (dice < 0.6) {
        ASSERT_TRUE(tm->Commit(txn).ok());
        for (auto& [record, value] : writes) reference[record] = value;
      } else if (dice < 0.85) {
        ASSERT_TRUE(tm->Abort(txn).ok());
        // reference unchanged
      } else {
        // Abandon in flight (locks stay held, so do this once, right
        // before the crash). Its dirty, uncommitted pages may even reach
        // the snapshot via the checkpoint below — the §5.4 undo case.
        abandoned = true;
        break;
      }
      // Random fuzzy checkpoint.
      if (rng.Bernoulli(0.15)) {
        ASSERT_TRUE(checkpointer.CheckpointOnce().ok());
      }
    }

    if (abandoned && rng.Bernoulli(0.5)) {
      // Fuzzy-checkpoint the in-flight transaction's dirty data so the
      // recovery MUST undo it from the logged old values.
      ASSERT_TRUE(checkpointer.CheckpointOnce().ok());
    }

    // CRASH.
    wal.CrashStop();
    store.SimulateCrash();
    RecoveryOptions ropts;
    ropts.use_first_update_table = rng.Bernoulli(0.5);
    auto stats = RecoverStore(&store, &wal, &fut, ropts);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    wal.Start();
    locks = std::make_unique<LockManager>();  // fresh lock table
    tm = std::make_unique<TransactionManager>(&store, locks.get(), &wal,
                                              &fut, stats->max_txn_id + 1);

    // AUDIT: byte-exact equality with the reference.
    for (int64_t r = 0; r < kRecords; ++r) {
      std::string actual;
      ASSERT_TRUE(store.ReadRecord(r, &actual).ok());
      EXPECT_EQ(actual, reference[r])
          << "generation " << gen << ", record " << r;
    }
  }
  wal.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RecoveryFuzzTest,
    ::testing::Values(FuzzParam{11, 60, 4}, FuzzParam{22, 60, 4},
                      FuzzParam{33, 120, 3}, FuzzParam{44, 40, 6},
                      FuzzParam{20260708, 200, 2}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace mmdb
