
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/database.cc" "src/CMakeFiles/mmdb_db.dir/db/database.cc.o" "gcc" "src/CMakeFiles/mmdb_db.dir/db/database.cc.o.d"
  "/root/repo/src/db/query_parser.cc" "src/CMakeFiles/mmdb_db.dir/db/query_parser.cc.o" "gcc" "src/CMakeFiles/mmdb_db.dir/db/query_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/mmdb_optimizer.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/mmdb_txn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/mmdb_index.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/mmdb_exec.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/mmdb_cost.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/mmdb_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/mmdb_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/mmdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
