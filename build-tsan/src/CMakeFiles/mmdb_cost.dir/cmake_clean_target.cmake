file(REMOVE_RECURSE
  "libmmdb_cost.a"
)
