#ifndef MMDB_COMMON_HASH_H_
#define MMDB_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace mmdb {

/// Finalizer of MurmurHash3: a fast, high-quality 64-bit integer mixer.
/// Used for hash-partitioning and hash-table bucket selection throughout
/// the join and aggregation code (§3 of the paper).
inline uint64_t Mix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDull;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ull;
  k ^= k >> 33;
  return k;
}

/// FNV-1a over arbitrary bytes, then mixed. Adequate quality for bucket
/// selection; keys in mmdb are short (≤ ~64 bytes).
inline uint64_t HashBytes(const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return Mix64(h);
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// Combines two hashes (boost::hash_combine-style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
}

}  // namespace mmdb

#endif  // MMDB_COMMON_HASH_H_
