#include "txn/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace mmdb {
namespace {

using std::chrono::milliseconds;

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  std::vector<TxnId> deps;
  EXPECT_TRUE(lm.Acquire(1, 10, LockMode::kShared, &deps).ok());
  EXPECT_TRUE(lm.Acquire(2, 10, LockMode::kShared, &deps).ok());
  EXPECT_TRUE(deps.empty());
}

TEST(LockManagerTest, ExclusiveBlocksUntilRelease) {
  LockManager lm;
  std::vector<TxnId> deps;
  ASSERT_TRUE(lm.Acquire(1, 10, LockMode::kExclusive, &deps).ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&]() {
    std::vector<TxnId> d;
    ASSERT_TRUE(lm.Acquire(2, 10, LockMode::kExclusive, &d).ok());
    granted.store(true);
  });
  std::this_thread::sleep_for(milliseconds(30));
  EXPECT_FALSE(granted.load());
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(granted.load());
}

TEST(LockManagerTest, ReacquireAndUpgrade) {
  LockManager lm;
  std::vector<TxnId> deps;
  ASSERT_TRUE(lm.Acquire(1, 5, LockMode::kShared, &deps).ok());
  ASSERT_TRUE(lm.Acquire(1, 5, LockMode::kShared, &deps).ok());
  ASSERT_TRUE(lm.Acquire(1, 5, LockMode::kExclusive, &deps).ok());  // upgrade
  // X re-request is a no-op.
  ASSERT_TRUE(lm.Acquire(1, 5, LockMode::kExclusive, &deps).ok());
  // Another txn must now block: verify via timeout-free deadlock path.
  LockManager strict(milliseconds(50));
  std::vector<TxnId> d2;
  ASSERT_TRUE(strict.Acquire(1, 5, LockMode::kExclusive, &d2).ok());
  EXPECT_EQ(strict.Acquire(2, 5, LockMode::kExclusive, &d2).code(),
            StatusCode::kDeadlock);  // times out
}

TEST(LockManagerTest, IntentionExclusiveCoexistsWithItself) {
  // Point writers on the same table each take IX (DESIGN.md §11); they must
  // not serialize on the table lock itself.
  LockManager lm;
  std::vector<TxnId> deps;
  EXPECT_TRUE(lm.Acquire(1, 10, LockMode::kIntentionExclusive, &deps).ok());
  EXPECT_TRUE(lm.Acquire(2, 10, LockMode::kIntentionExclusive, &deps).ok());
  EXPECT_TRUE(deps.empty());
  // S and X both conflict with a held IX (the timeout path reports
  // kDeadlock, same trick as ReacquireAndUpgrade).
  LockManager strict(milliseconds(50));
  std::vector<TxnId> d2;
  ASSERT_TRUE(
      strict.Acquire(1, 10, LockMode::kIntentionExclusive, &d2).ok());
  EXPECT_EQ(strict.Acquire(2, 10, LockMode::kShared, &d2).code(),
            StatusCode::kDeadlock);
  EXPECT_EQ(strict.Acquire(3, 10, LockMode::kExclusive, &d2).code(),
            StatusCode::kDeadlock);
}

TEST(LockManagerTest, SharedPlusIntentionEscalatesToExclusive) {
  // A txn holding S that then asks for IX (or vice versa) escalates to a
  // full X — SIX is approximated conservatively — so another reader must
  // now conflict.
  LockManager strict(milliseconds(50));
  std::vector<TxnId> d;
  ASSERT_TRUE(strict.Acquire(1, 4, LockMode::kShared, &d).ok());
  ASSERT_TRUE(strict.Acquire(1, 4, LockMode::kIntentionExclusive, &d).ok());
  EXPECT_EQ(strict.Acquire(2, 4, LockMode::kShared, &d).code(),
            StatusCode::kDeadlock);
}

TEST(LockManagerTest, PreCommitReleasesButRecordsDependency) {
  // §5.2's core protocol: after PreCommit, others acquire immediately but
  // become dependents.
  LockManager lm;
  std::vector<TxnId> deps;
  ASSERT_TRUE(lm.Acquire(1, 7, LockMode::kExclusive, &deps).ok());
  lm.PreCommit(1);
  std::vector<TxnId> deps2;
  ASSERT_TRUE(lm.Acquire(2, 7, LockMode::kExclusive, &deps2).ok());
  ASSERT_EQ(deps2.size(), 1u);
  EXPECT_EQ(deps2[0], 1);
  // After FinalizeCommit, new acquirers no longer depend on txn 1.
  lm.PreCommit(2);
  lm.FinalizeCommit(1);
  std::vector<TxnId> deps3;
  ASSERT_TRUE(lm.Acquire(3, 7, LockMode::kShared, &deps3).ok());
  ASSERT_EQ(deps3.size(), 1u);
  EXPECT_EQ(deps3[0], 2);  // only the still-pre-committed txn 2
}

TEST(LockManagerTest, ChainedDependencies) {
  LockManager lm;
  std::vector<TxnId> deps;
  ASSERT_TRUE(lm.Acquire(1, 3, LockMode::kExclusive, &deps).ok());
  lm.PreCommit(1);
  std::vector<TxnId> d2;
  ASSERT_TRUE(lm.Acquire(2, 3, LockMode::kExclusive, &d2).ok());
  EXPECT_EQ(d2, std::vector<TxnId>{1});
  lm.PreCommit(2);
  std::vector<TxnId> d3;
  ASSERT_TRUE(lm.Acquire(3, 3, LockMode::kExclusive, &d3).ok());
  // Txn 3 depends on both pre-committed predecessors.
  EXPECT_EQ(d3.size(), 2u);
}

TEST(LockManagerTest, DeadlockDetected) {
  LockManager lm(milliseconds(5000));
  std::vector<TxnId> deps;
  ASSERT_TRUE(lm.Acquire(1, 100, LockMode::kExclusive, &deps).ok());
  ASSERT_TRUE(lm.Acquire(2, 200, LockMode::kExclusive, &deps).ok());
  std::atomic<int> deadlocks{0};
  std::thread t1([&]() {
    std::vector<TxnId> d;
    Status s = lm.Acquire(1, 200, LockMode::kExclusive, &d);
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kDeadlock);
      ++deadlocks;
      lm.ReleaseAll(1);
    }
  });
  std::this_thread::sleep_for(milliseconds(30));
  std::thread t2([&]() {
    std::vector<TxnId> d;
    Status s = lm.Acquire(2, 100, LockMode::kExclusive, &d);
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kDeadlock);
      ++deadlocks;
      lm.ReleaseAll(2);
    }
  });
  t1.join();
  t2.join();
  EXPECT_GE(deadlocks.load(), 1);
  EXPECT_GE(lm.stats().deadlocks, 1);
}

TEST(LockManagerTest, ReleaseAllFreesEverything) {
  LockManager lm;
  std::vector<TxnId> deps;
  for (LockId l = 0; l < 5; ++l) {
    ASSERT_TRUE(lm.Acquire(1, l, LockMode::kExclusive, &deps).ok());
  }
  EXPECT_EQ(lm.NumLocks(), 5);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.NumLocks(), 0);
  // All immediately grantable to someone else.
  for (LockId l = 0; l < 5; ++l) {
    EXPECT_TRUE(lm.Acquire(2, l, LockMode::kExclusive, &deps).ok());
  }
}

TEST(LockManagerTest, LockTableEntriesCompactedAfterFinalize) {
  LockManager lm;
  std::vector<TxnId> deps;
  ASSERT_TRUE(lm.Acquire(1, 9, LockMode::kExclusive, &deps).ok());
  lm.PreCommit(1);
  EXPECT_EQ(lm.NumLocks(), 1);  // pre-committed entry keeps it alive
  lm.FinalizeCommit(1);
  EXPECT_EQ(lm.NumLocks(), 0);
}

TEST(LockManagerTest, ManyThreadsSerializeOnOneLock) {
  LockManager lm;
  int counter = 0;  // protected purely by the X lock
  constexpr int kThreads = 8;
  constexpr int kIncrements = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kIncrements; ++i) {
        std::vector<TxnId> d;
        const TxnId txn = t * 100000 + i + 1;
        ASSERT_TRUE(lm.Acquire(txn, 1, LockMode::kExclusive, &d).ok());
        ++counter;
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

}  // namespace
}  // namespace mmdb
