#ifndef MMDB_STORAGE_ROW_H_
#define MMDB_STORAGE_ROW_H_

#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace mmdb {

/// A materialized tuple as passed between executor operators.
using Row = std::vector<Value>;

/// Serializes `row` into exactly `schema.record_size()` bytes at `out`.
/// INT64/DOUBLE are stored little-endian; CHAR(n) is zero-padded. Fails if
/// arity/types mismatch or a string exceeds its column width.
Status SerializeRow(const Schema& schema, const Row& row, char* out);

/// Parses a record previously produced by SerializeRow.
Row DeserializeRow(const Schema& schema, const char* data);

/// Lexicographic comparison of two rows on one column. Rows must match the
/// schema that produced them.
int CompareRowsOn(const Row& a, const Row& b, int column);

/// Concatenation used by joins: left ++ right.
Row ConcatRows(const Row& left, const Row& right);

/// Renders "val1|val2|..." for debugging and golden tests.
std::string RowToString(const Row& row);

}  // namespace mmdb

#endif  // MMDB_STORAGE_ROW_H_
