file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_access_methods.dir/bench_table1_access_methods.cc.o"
  "CMakeFiles/bench_table1_access_methods.dir/bench_table1_access_methods.cc.o.d"
  "bench_table1_access_methods"
  "bench_table1_access_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_access_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
