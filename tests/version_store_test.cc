#include "txn/version_store.h"

#include <gtest/gtest.h>

#include <thread>

#include "txn/banking.h"
#include "txn/transaction_manager.h"

namespace mmdb {
namespace {

using std::chrono::microseconds;

TEST(VersionManagerTest, DirectReadWhenNeverUpdated) {
  SimulatedDisk disk(256);
  RecoverableStore store(&disk, 16, 16, 256);
  ASSERT_TRUE(store.WriteRecord(3, "hello", kInvalidLsn, nullptr).ok());
  VersionManager vm;
  const uint64_t snap = vm.BeginSnapshot();
  auto v = vm.Read(snap, 3, &store);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->substr(0, 5), "hello");
  EXPECT_EQ(vm.stats().direct_reads, 1);
  vm.EndSnapshot(snap);
}

TEST(VersionManagerTest, SnapshotSeesPreSnapshotCommitsOnly) {
  SimulatedDisk disk(256);
  RecoverableStore store(&disk, 16, 16, 256);
  VersionManager vm;
  vm.CaptureBase(0, "v0");
  vm.PublishCommit({{0, "v1"}});
  const uint64_t snap = vm.BeginSnapshot();  // sees v1
  vm.PublishCommit({{0, "v2"}});             // after the snapshot
  auto v = vm.Read(snap, 0, &store);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v1");
  // A fresh snapshot sees v2.
  const uint64_t snap2 = vm.BeginSnapshot();
  EXPECT_EQ(*vm.Read(snap2, 0, &store), "v2");
  vm.EndSnapshot(snap);
  vm.EndSnapshot(snap2);
}

TEST(VersionManagerTest, BaseVersionServesOldSnapshots) {
  SimulatedDisk disk(256);
  RecoverableStore store(&disk, 16, 16, 256);
  VersionManager vm;
  const uint64_t snap = vm.BeginSnapshot();  // before any commit
  vm.CaptureBase(5, "original");
  vm.PublishCommit({{5, "changed"}});
  EXPECT_EQ(*vm.Read(snap, 5, &store), "original");
  vm.EndSnapshot(snap);
}

TEST(VersionManagerTest, CaptureBaseIsIdempotentPerChain) {
  VersionManager vm;
  vm.CaptureBase(1, "first");
  vm.CaptureBase(1, "second");  // ignored: chain already has its base
  SimulatedDisk disk(256);
  RecoverableStore store(&disk, 16, 16, 256);
  EXPECT_EQ(*vm.Read(vm.BeginSnapshot(), 1, &store), "first");
}

TEST(VersionManagerTest, GcKeepsWhatSnapshotsNeed) {
  VersionManager vm;
  vm.CaptureBase(0, "v0");
  vm.PublishCommit({{0, "v1"}});
  const uint64_t snap = vm.BeginSnapshot();  // pins v1
  vm.PublishCommit({{0, "v2"}});
  vm.PublishCommit({{0, "v3"}});
  EXPECT_EQ(vm.Gc(), 1);  // only v0 is invisible to every snapshot
  SimulatedDisk disk(256);
  RecoverableStore store(&disk, 16, 16, 256);
  EXPECT_EQ(*vm.Read(snap, 0, &store), "v1");
  vm.EndSnapshot(snap);
  EXPECT_EQ(vm.Gc(), 2);  // v1, v2 now collectable; v3 retained
  EXPECT_EQ(*vm.Read(vm.BeginSnapshot(), 0, &store), "v3");
}

/// Full-stack test: lock-free snapshot scans run against concurrent
/// banking writers and must always see a CONSERVED total — the §6 claim.
TEST(VersionManagerTest, SnapshotScansSeeConservedTotalUnderLoad) {
  SimulatedDisk disk(4096);
  StableMemory stable(1 << 20);
  LogDevice device(4096, microseconds(0));
  RecoverableStore store(&disk, 512, 72, 4096);
  FirstUpdateTable fut(&stable, store.num_pages());
  LockManager locks;
  GroupCommitLogOptions gopts;
  gopts.flush_timeout = microseconds(100);
  GroupCommitLog wal({&device}, gopts);
  wal.Start();
  VersionManager vm;
  TransactionManager tm(&store, &locks, &wal, &fut, 1, &vm);

  BankingOptions bopts;
  bopts.num_accounts = 512;
  ASSERT_TRUE(InitAccounts(&store, bopts).ok());
  const int64_t expected_total =
      bopts.num_accounts * bopts.initial_balance;

  // Seed some committed history synchronously so the scans exercise the
  // version chains even if the writer threads start slowly.
  {
    Random rng(55);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(RunOneTransfer(&tm, bopts, &rng).ok());
    }
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t]() {
      Random rng(100 + t);
      while (!stop.load()) {
        (void)RunOneTransfer(&tm, bopts, &rng);
      }
    });
  }

  int scans = 0;
  for (int i = 0; i < 30; ++i) {
    const uint64_t snap = vm.BeginSnapshot();
    int64_t total = 0;
    for (int64_t r = 0; r < bopts.num_accounts; ++r) {
      auto v = vm.Read(snap, r, &store);
      ASSERT_TRUE(v.ok());
      total += DecodeAccount(*v);
    }
    vm.EndSnapshot(snap);
    EXPECT_EQ(total, expected_total) << "scan " << i;
    ++scans;
    if (i % 10 == 9) vm.Gc();
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  wal.Stop();
  EXPECT_EQ(scans, 30);
  EXPECT_GT(vm.stats().chain_reads, 0);
}

/// Contrast case, deterministic: with a transfer paused between its debit
/// and its credit, a DIRECT (unversioned) scan observes the torn state,
/// while a snapshot scan through the VersionManager still sees the
/// conserved total — the precise anomaly §6's versioning removes.
TEST(VersionManagerTest, DirectScanTearsWithoutVersions) {
  SimulatedDisk disk(4096);
  StableMemory stable(1 << 20);
  LogDevice device(4096, microseconds(0));
  RecoverableStore store(&disk, 64, 72, 4096);
  FirstUpdateTable fut(&stable, store.num_pages());
  LockManager locks;
  GroupCommitLogOptions gopts;
  gopts.flush_timeout = microseconds(50);
  GroupCommitLog wal({&device}, gopts);
  wal.Start();
  VersionManager vm;
  TransactionManager tm(&store, &locks, &wal, &fut, 1, &vm);

  BankingOptions bopts;
  bopts.num_accounts = 64;
  ASSERT_TRUE(InitAccounts(&store, bopts).ok());
  const int64_t expected_total =
      bopts.num_accounts * bopts.initial_balance;

  // Debit account 0 but pause before the matching credit.
  const TxnId txn = tm.Begin();
  ASSERT_TRUE(
      tm.Update(txn, 0, EncodeAccount(bopts.initial_balance - 100,
                                      bopts.record_size))
          .ok());

  // Direct scan: sees the half-done transfer (total short by 100).
  int64_t direct_total = 0;
  std::string rec;
  for (int64_t r = 0; r < bopts.num_accounts; ++r) {
    ASSERT_TRUE(store.ReadRecord(r, &rec).ok());
    direct_total += DecodeAccount(rec);
  }
  EXPECT_EQ(direct_total, expected_total - 100);

  // Snapshot scan: conserved, because the uncommitted debit is invisible.
  const uint64_t snap = vm.BeginSnapshot();
  int64_t snapshot_total = 0;
  for (int64_t r = 0; r < bopts.num_accounts; ++r) {
    auto v = vm.Read(snap, r, &store);
    ASSERT_TRUE(v.ok());
    snapshot_total += DecodeAccount(*v);
  }
  vm.EndSnapshot(snap);
  EXPECT_EQ(snapshot_total, expected_total);

  // Finish the transfer; a fresh snapshot now includes it.
  ASSERT_TRUE(
      tm.Update(txn, 1, EncodeAccount(bopts.initial_balance + 100,
                                      bopts.record_size))
          .ok());
  ASSERT_TRUE(tm.Commit(txn).ok());
  const uint64_t snap2 = vm.BeginSnapshot();
  int64_t total2 = 0;
  for (int64_t r = 0; r < bopts.num_accounts; ++r) {
    total2 += DecodeAccount(*vm.Read(snap2, r, &store));
  }
  vm.EndSnapshot(snap2);
  EXPECT_EQ(total2, expected_total);
  wal.Stop();
}

}  // namespace
}  // namespace mmdb
