# Empty compiler generated dependencies file for join_tid_test.
# This may be replaced when dependencies are built.
