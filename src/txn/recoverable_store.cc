#include "txn/recoverable_store.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/crc32.h"
#include "common/hash.h"
#include "sim/fault_injector.h"
#include "txn/log_manager.h"

namespace mmdb {

FirstUpdateTable::FirstUpdateTable(StableMemory* stable, int64_t num_pages,
                                   const std::string& region_name)
    : stable_(stable), region_(region_name), num_pages_(num_pages) {
  if (!stable_->Has(region_)) {
    // Slots plus the trailing 8-byte incremental checksum.
    Status s = stable_->Allocate(
        region_, (num_pages + 1) * static_cast<int64_t>(sizeof(Lsn)));
    MMDB_CHECK_MSG(s.ok(), s.ToString().c_str());
    Lsn* slots = Slots();
    for (int64_t i = 0; i < num_pages; ++i) slots[i] = kInvalidLsn;
    *ChecksumCell() = 0;  // clean slots contribute nothing
  }
}

Lsn* FirstUpdateTable::Slots() {
  return reinterpret_cast<Lsn*>(stable_->Region(region_)->data());
}
const Lsn* FirstUpdateTable::Slots() const {
  return reinterpret_cast<const Lsn*>(stable_->Region(region_)->data());
}
uint64_t* FirstUpdateTable::ChecksumCell() {
  return reinterpret_cast<uint64_t*>(Slots() + num_pages_);
}
const uint64_t* FirstUpdateTable::ChecksumCell() const {
  return reinterpret_cast<const uint64_t*>(Slots() + num_pages_);
}

uint64_t FirstUpdateTable::Token(int64_t page, Lsn lsn) {
  if (lsn == kInvalidLsn) return 0;
  return Mix64(static_cast<uint64_t>(page) * 0x9E3779B97F4A7C15ull ^
               Mix64(static_cast<uint64_t>(lsn)));
}

void FirstUpdateTable::SetSlot(int64_t page, Lsn lsn) {
  Lsn* slot = Slots() + page;
  *ChecksumCell() ^= Token(page, *slot) ^ Token(page, lsn);
  *slot = lsn;
}

void FirstUpdateTable::RecordUpdate(int64_t page, Lsn lsn) {
  MMDB_DCHECK(page >= 0 && page < num_pages_);
  std::unique_lock<std::mutex> lock(mu_);
  if (Slots()[page] == kInvalidLsn) SetSlot(page, lsn);
}

void FirstUpdateTable::ResetPage(int64_t page) {
  MMDB_DCHECK(page >= 0 && page < num_pages_);
  std::unique_lock<std::mutex> lock(mu_);
  SetSlot(page, kInvalidLsn);
}

void FirstUpdateTable::RestoreUpdate(int64_t page, Lsn lsn) {
  MMDB_DCHECK(page >= 0 && page < num_pages_);
  if (lsn == kInvalidLsn) return;
  std::unique_lock<std::mutex> lock(mu_);
  const Lsn current = Slots()[page];
  if (current == kInvalidLsn || lsn < current) SetSlot(page, lsn);
}

Lsn FirstUpdateTable::Get(int64_t page) const {
  std::unique_lock<std::mutex> lock(mu_);
  return Slots()[page];
}

Lsn FirstUpdateTable::MinLsn() const {
  std::unique_lock<std::mutex> lock(mu_);
  const Lsn* slots = Slots();
  Lsn min_lsn = kInvalidLsn;
  for (int64_t i = 0; i < num_pages_; ++i) {
    if (slots[i] != kInvalidLsn &&
        (min_lsn == kInvalidLsn || slots[i] < min_lsn)) {
      min_lsn = slots[i];
    }
  }
  return min_lsn;
}

void FirstUpdateTable::Clear() {
  std::unique_lock<std::mutex> lock(mu_);
  Lsn* slots = Slots();
  for (int64_t i = 0; i < num_pages_; ++i) slots[i] = kInvalidLsn;
  // Recomputed from scratch, NOT incrementally: after corruption the
  // incremental XOR carries the bit-flip delta forever, so this is the only
  // way to return the table to a verifiable state.
  *ChecksumCell() = 0;
}

bool FirstUpdateTable::Verify() const {
  std::unique_lock<std::mutex> lock(mu_);
  const Lsn* slots = Slots();
  uint64_t expected = 0;
  for (int64_t i = 0; i < num_pages_; ++i) {
    expected ^= Token(i, slots[i]);
  }
  return expected == *ChecksumCell();
}

RecoverableStore::RecoverableStore(SimulatedDisk* disk, int64_t num_records,
                                   int32_t record_size, int64_t page_size)
    : disk_(disk),
      num_records_(num_records),
      record_size_(record_size),
      page_size_(page_size),
      records_per_page_(static_cast<int32_t>(page_size / record_size)),
      snapshot_(disk, "store_snapshot"),
      snapshot_crc_(disk, "store_snapshot_crc") {
  MMDB_CHECK(records_per_page_ > 0);
  num_pages_ = (num_records + records_per_page_ - 1) / records_per_page_;
  crc_entries_per_page_ =
      static_cast<int32_t>(page_size_ / static_cast<int64_t>(sizeof(uint32_t)));
  MMDB_CHECK(crc_entries_per_page_ > 0);
  memory_.assign(static_cast<size_t>(num_pages_ * page_size_), 0);
  last_update_lsn_.assign(static_cast<size_t>(num_pages_), kInvalidLsn);
  // Seed the snapshot with the initial (all-zero) image so recovery always
  // has a base state, and the checksum file to match.
  std::vector<char> zero(static_cast<size_t>(page_size_), 0);
  const uint32_t zero_crc = Crc32c(zero.data(), zero.size());
  crc_cache_.assign(static_cast<size_t>(num_pages_), zero_crc);
  for (int64_t p = 0; p < num_pages_; ++p) {
    Status s = WritePageWithRetry(&snapshot_, p, zero.data());
    MMDB_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  const int64_t num_crc_pages =
      (num_pages_ + crc_entries_per_page_ - 1) / crc_entries_per_page_;
  std::vector<uint32_t> crc_page(
      static_cast<size_t>(crc_entries_per_page_), zero_crc);
  for (int64_t p = 0; p < num_crc_pages; ++p) {
    Status s = WritePageWithRetry(&snapshot_crc_, p, crc_page.data());
    MMDB_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
}

char* RecoverableStore::RecordPtr(int64_t record_id) {
  const int64_t page = PageOf(record_id);
  const int64_t slot = record_id % records_per_page_;
  return memory_.data() + page * page_size_ + slot * record_size_;
}
const char* RecoverableStore::RecordPtr(int64_t record_id) const {
  return const_cast<RecoverableStore*>(this)->RecordPtr(record_id);
}

Status RecoverableStore::ReadPageWithRetry(PageFile* file, int64_t page,
                                           void* out) {
  Status last;
  for (int attempt = 0; attempt < kDefaultMaxIoAttempts; ++attempt) {
    last = file->Read(page, out, IoKind::kSequential);
    if (last.ok()) return last;
    if (last.code() != StatusCode::kIOError) return last;  // not retryable
    io_retries_.fetch_add(1);
  }
  return Status::RetryExhausted("snapshot read: " + last.ToString());
}

Status RecoverableStore::WritePageWithRetry(PageFile* file, int64_t page,
                                            const void* data) {
  Status last;
  for (int attempt = 0; attempt < kDefaultMaxIoAttempts; ++attempt) {
    last = file->Write(page, data, IoKind::kSequential);
    if (last.ok()) return last;
    if (last.code() != StatusCode::kIOError) return last;  // not retryable
    io_retries_.fetch_add(1);
  }
  return Status::RetryExhausted("snapshot write: " + last.ToString());
}

Status RecoverableStore::FlushCrcEntry(int64_t page) {
  const int64_t crc_page = page / crc_entries_per_page_;
  const int64_t first = crc_page * crc_entries_per_page_;
  std::vector<uint32_t> buf(static_cast<size_t>(crc_entries_per_page_), 0);
  const int64_t count =
      std::min<int64_t>(crc_entries_per_page_, num_pages_ - first);
  std::memcpy(buf.data(), crc_cache_.data() + first,
              static_cast<size_t>(count) * sizeof(uint32_t));
  return WritePageWithRetry(&snapshot_crc_, crc_page, buf.data());
}

Status RecoverableStore::ReadRecord(int64_t record_id,
                                    std::string* out) const {
  if (record_id < 0 || record_id >= num_records_) {
    return Status::OutOfRange("record id");
  }
  // The guard runs before mu_ so its on-demand replay can re-enter the
  // store through ApplyRecovery without self-deadlocking.
  if (RecordAccessGuard* guard =
          access_guard_.load(std::memory_order_acquire)) {
    MMDB_RETURN_IF_ERROR(guard->OnAccess(record_id));
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (!loaded_) return Status::FailedPrecondition("store is crashed");
  out->assign(RecordPtr(record_id), static_cast<size_t>(record_size_));
  return Status::OK();
}

Status RecoverableStore::WriteRecord(int64_t record_id, std::string_view value,
                                     Lsn lsn, FirstUpdateTable* fut) {
  if (record_id < 0 || record_id >= num_records_) {
    return Status::OutOfRange("record id");
  }
  if (static_cast<int32_t>(value.size()) > record_size_) {
    return Status::InvalidArgument("value wider than record");
  }
  if (RecordAccessGuard* guard =
          access_guard_.load(std::memory_order_acquire)) {
    MMDB_RETURN_IF_ERROR(guard->OnAccess(record_id));
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (!loaded_) return Status::FailedPrecondition("store is crashed");
  char* dst = RecordPtr(record_id);
  std::memset(dst, 0, static_cast<size_t>(record_size_));
  std::memcpy(dst, value.data(), value.size());
  const int64_t page = PageOf(record_id);
  dirty_pages_.insert(page);
  if (lsn != kInvalidLsn) {
    last_update_lsn_[static_cast<size_t>(page)] =
        std::max(last_update_lsn_[static_cast<size_t>(page)], lsn);
  }
  ++stats_.updates;
  lock.unlock();
  if (fut != nullptr && lsn != kInvalidLsn) fut->RecordUpdate(page, lsn);
  return Status::OK();
}

Status RecoverableStore::ApplyRecovery(int64_t record_id,
                                       std::string_view value, Lsn lsn) {
  if (record_id < 0 || record_id >= num_records_) {
    return Status::OutOfRange("record id");
  }
  if (static_cast<int32_t>(value.size()) > record_size_) {
    return Status::InvalidArgument("value wider than record");
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (!loaded_) return Status::FailedPrecondition("store is crashed");
  char* dst = RecordPtr(record_id);
  std::memset(dst, 0, static_cast<size_t>(record_size_));
  std::memcpy(dst, value.data(), value.size());
  const int64_t page = PageOf(record_id);
  dirty_pages_.insert(page);
  if (lsn != kInvalidLsn) {
    last_update_lsn_[static_cast<size_t>(page)] =
        std::max(last_update_lsn_[static_cast<size_t>(page)], lsn);
  }
  return Status::OK();
}

Lsn RecoverableStore::PageLsn(int64_t page) const {
  MMDB_DCHECK(page >= 0 && page < num_pages_);
  std::unique_lock<std::mutex> lock(mu_);
  return last_update_lsn_[static_cast<size_t>(page)];
}

void RecoverableStore::StampPageLsn(int64_t page, Lsn lsn) {
  MMDB_DCHECK(page >= 0 && page < num_pages_);
  if (lsn == kInvalidLsn) return;
  std::unique_lock<std::mutex> lock(mu_);
  last_update_lsn_[static_cast<size_t>(page)] =
      std::max(last_update_lsn_[static_cast<size_t>(page)], lsn);
}

void RecoverableStore::ClearPageLsns() {
  std::unique_lock<std::mutex> lock(mu_);
  std::fill(last_update_lsn_.begin(), last_update_lsn_.end(), kInvalidLsn);
}

Status RecoverableStore::CopyPage(int64_t page, std::string* out,
                                  Lsn* page_lsn) const {
  if (page < 0 || page >= num_pages_) return Status::OutOfRange("page");
  std::unique_lock<std::mutex> lock(mu_);
  if (!loaded_) return Status::FailedPrecondition("store is crashed");
  out->assign(memory_.data() + page * page_size_,
              static_cast<size_t>(page_size_));
  if (page_lsn != nullptr) {
    *page_lsn = last_update_lsn_[static_cast<size_t>(page)];
  }
  return Status::OK();
}

Status RecoverableStore::InstallPage(int64_t page, std::string_view bytes) {
  if (page < 0 || page >= num_pages_) return Status::OutOfRange("page");
  if (static_cast<int64_t>(bytes.size()) != page_size_) {
    return Status::InvalidArgument("backup page size mismatch");
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (!loaded_) return Status::FailedPrecondition("store is crashed");
  std::memcpy(memory_.data() + page * page_size_, bytes.data(), bytes.size());
  dirty_pages_.insert(page);
  return Status::OK();
}

std::vector<int64_t> RecoverableStore::DirtyPages() const {
  std::unique_lock<std::mutex> lock(mu_);
  return std::vector<int64_t>(dirty_pages_.begin(), dirty_pages_.end());
}

int64_t RecoverableStore::NumDirtyPages() const {
  std::unique_lock<std::mutex> lock(mu_);
  return static_cast<int64_t>(dirty_pages_.size());
}

Status RecoverableStore::CheckpointPage(int64_t page, FirstUpdateTable* fut,
                                        Wal* wal) {
  if (page < 0 || page >= num_pages_) return Status::OutOfRange("page");
  std::unique_lock<std::mutex> lock(mu_);
  if (!loaded_) return Status::FailedPrecondition("store is crashed");
  // WAL rule: every log record describing this page's contents must be
  // durable before the page itself may overwrite the snapshot. Loop until
  // the fence is stable: an update racing in while we wait raises it.
  if (wal != nullptr) {
    while (true) {
      const Lsn fence = last_update_lsn_[static_cast<size_t>(page)];
      if (fence == kInvalidLsn) break;
      lock.unlock();
      wal->WaitLsnDurable(fence);
      lock.lock();
      if (!loaded_) return Status::FailedPrecondition("store is crashed");
      if (last_update_lsn_[static_cast<size_t>(page)] == fence) break;
    }
  }
  // Remember the first-update entry so a failed write can restore it.
  const Lsn old_first = fut != nullptr ? fut->Get(page) : kInvalidLsn;
  // Reset the first-update entry BEFORE taking the copy: an update racing
  // in after the copy then re-dirties the page and re-enters the table, so
  // its redo is never lost. (An update between reset and copy is captured
  // by both the snapshot and the table — redundant redo, which is benign.)
  if (fut != nullptr) fut->ResetPage(page);
  // Copy-then-write keeps the lock only for the memcpy (fuzzy checkpoint:
  // concurrent updates to *other* pages proceed; an update to this page
  // after the copy re-dirties it).
  std::vector<char> copy(memory_.data() + page * page_size_,
                         memory_.data() + (page + 1) * page_size_);
  dirty_pages_.erase(page);
  lock.unlock();

  Status write_status = WritePageWithRetry(&snapshot_, page, copy.data());
  if (write_status.ok()) {
    std::unique_lock<std::mutex> crc_lock(crc_mu_);
    crc_cache_[static_cast<size_t>(page)] = Crc32c(copy.data(), copy.size());
    write_status = FlushCrcEntry(page);
  }
  if (!write_status.ok()) {
    // Nothing is lost: re-dirty the page and restore its first-update
    // entry so the next checkpoint (or recovery) still covers it. A stale
    // on-disk checksum from a half-failed pair is caught at load and the
    // page rebuilt from the log.
    lock.lock();
    dirty_pages_.insert(page);
    lock.unlock();
    if (fut != nullptr) fut->RestoreUpdate(page, old_first);
    return write_status;
  }
  lock.lock();
  ++stats_.pages_checkpointed;
  return Status::OK();
}

void RecoverableStore::SimulateCrash() {
  std::unique_lock<std::mutex> lock(mu_);
  // Power failure: the memory image is garbage now, and so is the volatile
  // checksum cache (LoadSnapshot rebuilds it from disk).
  std::fill(memory_.begin(), memory_.end(), char(0xDB));
  {
    std::unique_lock<std::mutex> crc_lock(crc_mu_);
    std::fill(crc_cache_.begin(), crc_cache_.end(), 0xDBDBDBDBu);
  }
  dirty_pages_.clear();
  loaded_ = false;
}

Status RecoverableStore::LoadSnapshot(std::vector<int64_t>* quarantined) {
  std::unique_lock<std::mutex> lock(mu_);
  std::unique_lock<std::mutex> crc_lock(crc_mu_);
  // Rebuild the checksum cache from disk first. A checksum page that stays
  // unreadable makes every page it covers unverifiable; those pages are
  // quarantined wholesale — trusting an unverifiable page risks silent
  // corruption, while quarantining merely costs log replay.
  const int64_t num_crc_pages =
      (num_pages_ + crc_entries_per_page_ - 1) / crc_entries_per_page_;
  std::vector<bool> verifiable(static_cast<size_t>(num_pages_), true);
  std::vector<uint32_t> crc_page(static_cast<size_t>(crc_entries_per_page_));
  for (int64_t cp = 0; cp < num_crc_pages; ++cp) {
    const int64_t first = cp * crc_entries_per_page_;
    const int64_t count =
        std::min<int64_t>(crc_entries_per_page_, num_pages_ - first);
    Status s = ReadPageWithRetry(&snapshot_crc_, cp, crc_page.data());
    if (s.ok()) {
      std::memcpy(crc_cache_.data() + first, crc_page.data(),
                  static_cast<size_t>(count) * sizeof(uint32_t));
    } else {
      for (int64_t p = first; p < first + count; ++p) {
        verifiable[static_cast<size_t>(p)] = false;
      }
    }
  }
  for (int64_t p = 0; p < num_pages_; ++p) {
    char* dst = memory_.data() + p * page_size_;
    Status s = ReadPageWithRetry(&snapshot_, p, dst);
    bool good = s.ok() && verifiable[static_cast<size_t>(p)] &&
                Crc32c(dst, static_cast<size_t>(page_size_)) ==
                    crc_cache_[static_cast<size_t>(p)];
    if (s.ok()) ++stats_.snapshot_pages_read;
    if (!good) {
      std::memset(dst, 0, static_cast<size_t>(page_size_));
      pages_quarantined_.fetch_add(1);
      if (quarantined != nullptr) quarantined->push_back(p);
    }
  }
  dirty_pages_.clear();
  loaded_ = true;
  return Status::OK();
}

RecoverableStore::Stats RecoverableStore::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  Stats s = stats_;
  s.io_retries = io_retries_.load();
  s.pages_quarantined = pages_quarantined_.load();
  return s;
}

}  // namespace mmdb
