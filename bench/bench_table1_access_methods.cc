// Reproduces §2 / Table 1: AVL-tree vs B+-tree for keyed access to a
// partially memory-resident relation.
//
// Part 1 regenerates the analytic table: break-even comparison-cost ratio
// Y*(H, Z) for the random-access case and its sequential companion, plus
// the break-even memory fraction H* — the paper's "80%-90% of the
// database" conclusion.
//
// Part 2 validates the model empirically: a real AVL tree (with the §2
// node-per-page fault simulation) and a real paged B+-tree (through a
// buffer pool with random replacement) run the same lookups; we report
// measured comparisons/faults per lookup next to the model's C, C',
// C(1-H), (height+1)(1-0.69H).

#include <cmath>
#include <cstdio>

#include "common/random.h"
#include "cost/access_cost.h"
#include "index/avl_tree.h"
#include "index/btree.h"

namespace mmdb {
namespace {

void PrintAnalyticTable() {
  AccessModelParams p;
  p.num_tuples = 1'000'000;
  p.key_width = 8;
  p.tuple_width = 100;
  p.page_size = 4096;

  std::printf(
      "== Table 1 (reproduction): break-even AVL/B+ comparison-cost ratio "
      "Y* ==\n");
  std::printf("(AVL preferred when its comparisons cost at most Y* of a "
              "B+-tree comparison; Y* < 0 means AVL cannot win)\n\n");
  std::printf("Random access, ||R||=1e6, K=8, L=100, P=4096\n");
  std::printf("%6s", "Z\\H");
  const double hs[] = {0.70, 0.80, 0.85, 0.90, 0.95, 0.99};
  for (double h : hs) std::printf(" %8.2f", h);
  std::printf("\n");
  for (double z : {10.0, 20.0, 30.0}) {
    p.z = z;
    std::printf("%6.0f", z);
    for (double h : hs) std::printf(" %8.3f", BreakEvenY(p, h));
    std::printf("\n");
  }

  std::printf("\nSequential access (N = 1000 records), same geometry\n");
  std::printf("%6s", "Z\\H'");
  for (double h : hs) std::printf(" %8.2f", h);
  std::printf("\n");
  for (double z : {10.0, 20.0, 30.0}) {
    p.z = z;
    std::printf("%6.0f", z);
    for (double h : hs) {
      std::printf(" %8.3f", BreakEvenYSequential(p, h, 1000));
    }
    std::printf("\n");
  }

  std::printf("\nBreak-even memory fraction H* (AVL wins above it):\n");
  for (double y : {0.5, 0.8, 1.0}) {
    std::printf("  Y=%.1f:", y);
    for (double z : {10.0, 20.0, 30.0}) {
      p.y = y;
      p.z = z;
      std::printf("  Z=%2.0f -> H*=%.3f", z, BreakEvenH(p));
    }
    std::printf("\n");
  }
  std::printf("\npaper: \"B+-trees preferred unless more than 80%%-90%% of "
              "the database fits in main memory\"\n\n");
}

void EmpiricalValidation() {
  constexpr int64_t kTuples = 100'000;
  constexpr int32_t kTupleWidth = 100;
  constexpr int64_t kPageSize = 4096;
  constexpr int kLookups = 4000;

  AccessModelParams model;
  model.num_tuples = kTuples;
  model.key_width = 8;
  model.tuple_width = kTupleWidth;
  model.page_size = kPageSize;
  model.z = 20;
  model.y = 0.8;

  std::printf("== Empirical cross-check: executed structures vs the model "
              "(||R||=%lld, L=%d, Z=20, Y=0.8) ==\n",
              static_cast<long long>(kTuples), kTupleWidth);
  std::printf("%5s | %-29s | %-29s | %s\n", "H",
              "AVL cmp/faults (model)", "B+ cmp/faults (model)", "winner");

  Random keygen(42);
  std::vector<int64_t> keys(kTuples);
  for (int64_t i = 0; i < kTuples; ++i) keys[size_t(i)] = i;
  keygen.Shuffle(&keys);
  const int64_t avl_pages = kTuples * (kTupleWidth + 8) / kPageSize;  // S

  for (double h : {0.2, 0.5, 0.8, 0.95}) {
    const int64_t memory_pages =
        std::max<int64_t>(16, static_cast<int64_t>(h * double(avl_pages)));

    // --- AVL with the §2 node-per-page fault simulation.
    AvlTree avl;
    for (int64_t k : keys) avl.Insert(Value{k}, k);
    avl.ConfigurePaging(avl_pages, memory_pages, 7);
    Random rng(1);
    for (int i = 0; i < 2000; ++i) {  // warm the resident set
      (void)avl.Find(Value{keys[rng.Uniform(uint64_t(kTuples))]});
    }
    avl.ResetStats();
    for (int i = 0; i < kLookups; ++i) {
      (void)avl.Find(Value{keys[rng.Uniform(uint64_t(kTuples))]});
    }
    const double avl_cmp = double(avl.stats().comparisons) / kLookups;
    const double avl_faults = double(avl.stats().page_faults) / kLookups;

    // --- Real B+-tree through a random-replacement pool of the SAME
    // absolute memory (so its resident fraction is ~0.69 H, as the paper's
    // S ~ 0.69 S' note implies).
    SimulatedDisk disk(kPageSize);
    BufferPool pool(&disk, memory_pages, ReplacementPolicy::kRandom, 5);
    PageFile file(&disk, "btree");
    BPlusTree tree(&pool, &file, BTreeOptions{8, kTupleWidth - 8});
    {
      std::vector<char> key(8), payload(size_t(kTupleWidth - 8), 'x');
      for (int64_t k : keys) {
        BPlusTree::EncodeInt64Key(k, key.data(), 8);
        MMDB_CHECK(tree.Insert(key.data(), payload.data()).ok());
      }
    }
    Random rng2(2);
    std::vector<char> probe(8);
    for (int i = 0; i < 2000; ++i) {
      BPlusTree::EncodeInt64Key(keys[rng2.Uniform(uint64_t(kTuples))],
                                probe.data(), 8);
      (void)tree.Find(probe.data(), nullptr);
    }
    tree.ResetStats();
    pool.ResetStats();
    for (int i = 0; i < kLookups; ++i) {
      BPlusTree::EncodeInt64Key(keys[rng2.Uniform(uint64_t(kTuples))],
                                probe.data(), 8);
      (void)tree.Find(probe.data(), nullptr);
    }
    const double bt_cmp = double(tree.stats().comparisons) / kLookups;
    const double bt_faults = double(pool.stats().faults) / kLookups;

    const AvlAccessCost avl_model = ComputeAvlCost(model, memory_pages);
    const BTreeAccessCost bt_model = ComputeBTreeCost(model, memory_pages);
    const double avl_cost = model.z * avl_faults + model.y * avl_cmp;
    const double bt_cost = model.z * bt_faults + bt_cmp;

    std::printf(
        "%5.2f | %5.1f/%5.2f (%5.1f/%5.2f) | %5.1f/%5.2f (%5.1f/%5.2f) | "
        "cost %6.1f vs %6.1f -> %s\n",
        h, avl_cmp, avl_faults, avl_model.comparisons, avl_model.faults,
        bt_cmp, bt_faults, bt_model.comparisons, bt_model.faults, avl_cost,
        bt_cost, avl_cost < bt_cost ? "AVL" : "B+");
  }
  std::printf("\n(measured faults run below the model: real traversals "
              "keep the hot upper levels resident — the paper's uniform-"
              "page assumption is conservative; see EXPERIMENTS.md)\n");
}

}  // namespace
}  // namespace mmdb

int main() {
  mmdb::PrintAnalyticTable();
  mmdb::EmpiricalValidation();
  return 0;
}
