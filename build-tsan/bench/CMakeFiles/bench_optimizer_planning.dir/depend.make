# Empty dependencies file for bench_optimizer_planning.
# This may be replaced when dependencies are built.
