#ifndef MMDB_TXN_CHECKPOINT_H_
#define MMDB_TXN_CHECKPOINT_H_

#include <atomic>
#include <chrono>
#include <thread>

#include "common/status.h"
#include "txn/recoverable_store.h"

namespace mmdb {

struct CheckpointerOptions {
  /// Pause between background sweeps.
  std::chrono::milliseconds sweep_interval{50};
  /// Max pages written per sweep (throttle; <= 0 = unlimited).
  int64_t pages_per_sweep = 0;
};

/// §5.3: "data pages are periodically written to disk by a background
/// process that sweeps through data buffers to find dirty pages". Because
/// the database never quiesces, the checkpoint is fuzzy — pages may carry
/// uncommitted data, which recovery undoes from the log's old values.
class Checkpointer {
 public:
  /// `wal` (optional) enforces the WAL rule per page before it is written.
  Checkpointer(RecoverableStore* store, FirstUpdateTable* fut,
               class Wal* wal = nullptr, CheckpointerOptions options = {});
  ~Checkpointer();

  /// One full sweep over the currently dirty pages. Returns pages written.
  StatusOr<int64_t> CheckpointOnce();

  /// Background mode.
  void Start();
  void Stop();

  int64_t total_pages_written() const { return total_pages_written_.load(); }

 private:
  void Loop();

  RecoverableStore* store_;
  FirstUpdateTable* fut_;
  class Wal* wal_;
  CheckpointerOptions options_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> total_pages_written_{0};
};

}  // namespace mmdb

#endif  // MMDB_TXN_CHECKPOINT_H_
