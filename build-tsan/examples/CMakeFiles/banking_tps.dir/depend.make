# Empty dependencies file for banking_tps.
# This may be replaced when dependencies are built.
