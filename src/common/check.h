#ifndef MMDB_COMMON_CHECK_H_
#define MMDB_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Fatal invariant checks. MMDB_CHECK is always on; MMDB_DCHECK compiles out
/// in NDEBUG builds. Use for programmer errors only — anticipated runtime
/// failures (bad input, missing keys, I/O) must return Status instead.
#define MMDB_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "MMDB_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#define MMDB_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "MMDB_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#ifdef NDEBUG
#define MMDB_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define MMDB_DCHECK(cond) MMDB_CHECK(cond)
#endif

#endif  // MMDB_COMMON_CHECK_H_
