file(REMOVE_RECURSE
  "libmmdb_sim.a"
)
