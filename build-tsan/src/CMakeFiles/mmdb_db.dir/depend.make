# Empty dependencies file for mmdb_db.
# This may be replaced when dependencies are built.
