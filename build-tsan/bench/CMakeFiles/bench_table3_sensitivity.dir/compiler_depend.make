# Empty compiler generated dependencies file for bench_table3_sensitivity.
# This may be replaced when dependencies are built.
