#ifndef MMDB_TXN_STABLE_LOG_H_
#define MMDB_TXN_STABLE_LOG_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "sim/stable_memory.h"
#include "txn/log_manager.h"

namespace mmdb {

struct StableLogOptions {
  /// Drop undo images before the disk write (§5.4: "only new values of
  /// committed transactions are ever written to disk" — about half the log).
  bool compress = true;
  /// Backpressure bound on the stable output queue. When the drainer falls
  /// behind, committers block until space frees — §5.4: "in the steady
  /// state, the number of transactions processed per second is still
  /// limited by how fast we can empty buffer pages".
  int64_t max_queue_bytes = 1 << 20;
};

/// §5.4's stable-memory log: transactions keep their log records in a
/// per-transaction area of battery-backed memory and COMMIT THE MOMENT the
/// commit record lands there — no disk wait at all. A background drainer
/// empties filled pages of the stable output queue to the log device; in
/// steady state throughput is still bounded by the device, but commit
/// latency is memory-speed and the disk log shrinks ~2× via new-value-only
/// compression.
///
/// Crash semantics: the per-transaction areas and the output queue live in
/// StableMemory and survive; recovery reads disk + stable queue (committed
/// work) and the areas of in-flight transactions (undo images).
class StableLogBuffer : public Wal {
 public:
  StableLogBuffer(StableMemory* stable, LogDevice* device,
                  StableLogOptions options = {});
  ~StableLogBuffer() override;

  void Start() override;
  void Stop() override;

  Lsn Append(LogRecord rec) override;
  Lsn AppendCommit(LogRecord rec, const std::vector<TxnId>& deps) override;
  /// Returns immediately: stable memory IS durable.
  void WaitCommitDurable(TxnId /*txn*/) override {}
  void DiscardTxn(TxnId txn) override;
  std::vector<LogRecord> ReadAllForRecovery(
      LogReadStats* stats = nullptr) override;
  Stats stats() const override;

  /// Bytes currently queued in stable memory awaiting drain.
  int64_t queued_bytes() const;

 private:
  static std::string TxnRegionName(TxnId txn);

  void DrainerLoop();

  StableMemory* stable_;
  LogDevice* device_;
  StableLogOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread drainer_;
  bool stop_ = false;
  std::unordered_set<TxnId> active_txns_;

  std::atomic<Lsn> next_lsn_{0};
  int64_t logical_bytes_ = 0;
  int64_t queued_bytes_compressed_ = 0;
  int64_t commits_ = 0;
  int64_t io_retries_ = 0;
  int64_t write_failures_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_TXN_STABLE_LOG_H_
