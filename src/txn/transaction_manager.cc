#include "txn/transaction_manager.h"

#include <algorithm>

#include "common/check.h"
#include "txn/mvcc.h"

namespace mmdb {

TransactionManager::TransactionManager(RecoverableStore* store,
                                       LockManager* locks, Wal* wal,
                                       FirstUpdateTable* fut,
                                       TxnId first_txn_id,
                                       MvccManager* versions)
    : store_(store),
      locks_(locks),
      wal_(wal),
      fut_(fut),
      versions_(versions) {
  next_txn_.store(first_txn_id);
}

TxnId TransactionManager::Begin() {
  const TxnId txn = next_txn_.fetch_add(1);
  LogRecord rec;
  rec.type = LogRecordType::kBegin;
  rec.txn_id = txn;
  const Lsn begin_lsn = wal_->Append(std::move(rec));
  std::unique_lock<std::mutex> lock(mu_);
  TxnState state;
  state.begin_lsn = begin_lsn;
  active_[txn] = std::move(state);
  ++stats_.begun;
  return txn;
}

TxnId TransactionManager::BeginSnapshotTxn() {
  MMDB_CHECK_MSG(versions_ != nullptr,
                 "BeginSnapshotTxn requires an MvccManager");
  const TxnId txn = next_txn_.fetch_add(1);
  LogRecord rec;
  rec.type = LogRecordType::kBegin;
  rec.txn_id = txn;
  const Lsn begin_lsn = wal_->Append(std::move(rec));
  // Pin the read timestamp after the begin record so the snapshot is at
  // least as fresh as everything this txn could have observed beforehand.
  const uint64_t read_ts = versions_->BeginSnapshot();
  std::unique_lock<std::mutex> lock(mu_);
  TxnState state;
  state.mode = TxnMode::kSnapshot;
  state.begin_lsn = begin_lsn;
  state.read_ts = read_ts;
  active_[txn] = std::move(state);
  ++stats_.begun;
  ++stats_.snapshot_begun;
  return txn;
}

bool TransactionManager::LookupMode(TxnId txn, TxnMode* mode,
                                    uint64_t* read_ts) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = active_.find(txn);
  if (it == active_.end()) return false;
  *mode = it->second.mode;
  *read_ts = it->second.read_ts;
  return true;
}

Status TransactionManager::TrackClaim(TxnId txn, int64_t record_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = active_.find(txn);
  if (it == active_.end()) {
    // The txn vanished between the claim and here; release the orphan
    // claim so the record does not stay owned forever.
    lock.unlock();
    versions_->AbortTxn(txn, {record_id});
    return Status::FailedPrecondition("transaction not active");
  }
  std::vector<int64_t>& claimed = it->second.claimed;
  if (std::find(claimed.begin(), claimed.end(), record_id) == claimed.end()) {
    claimed.push_back(record_id);
  }
  return Status::OK();
}

StatusOr<std::string> TransactionManager::Read(TxnId txn, int64_t record_id) {
  TxnMode mode;
  uint64_t read_ts;
  if (!LookupMode(txn, &mode, &read_ts)) {
    return Status::FailedPrecondition("transaction not active");
  }
  if (mode == TxnMode::kSnapshot) {
    // §6: no locks, no latches — pure visibility check at the pinned
    // read timestamp.
    return versions_->Read(read_ts, record_id);
  }
  std::vector<TxnId> deps;
  MMDB_RETURN_IF_ERROR(
      locks_->Acquire(txn, record_id, LockMode::kShared, &deps));
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = active_.find(txn);
    if (it == active_.end()) {
      return Status::FailedPrecondition("transaction not active");
    }
    // Reading a pre-committed writer's data makes us its dependent (§5.2).
    it->second.deps.insert(it->second.deps.end(), deps.begin(), deps.end());
  }
  std::string value;
  MMDB_RETURN_IF_ERROR(store_->ReadRecord(record_id, &value));
  return value;
}

Status TransactionManager::Update(TxnId txn, int64_t record_id,
                                  std::string_view new_value) {
  TxnMode mode;
  uint64_t read_ts;
  if (!LookupMode(txn, &mode, &read_ts)) {
    return Status::FailedPrecondition("transaction not active");
  }

  std::vector<TxnId> deps;
  if (mode == TxnMode::kSnapshot) {
    // Claim-then-lock: the non-blocking ownership claim is the conflict
    // check (first writer wins); the record X lock merely keeps §5 2PL
    // readers from seeing our in-place value mid-flight. Claims never
    // block, so they can never complete a waits-for cycle.
    Status claim = versions_->ClaimWrite(txn, record_id, read_ts);
    if (!claim.ok()) {
      if (claim.code() == StatusCode::kConflict) {
        std::unique_lock<std::mutex> lock(mu_);
        ++stats_.conflicts;
      }
      return claim;
    }
    MMDB_RETURN_IF_ERROR(TrackClaim(txn, record_id));
    MMDB_RETURN_IF_ERROR(
        locks_->Acquire(txn, record_id, LockMode::kExclusive, &deps));
  } else {
    // Lock-then-claim: 2PL writers serialize on the X lock; the claim then
    // only loses to a snapshot writer caught between its claim and its
    // lock acquisition.
    MMDB_RETURN_IF_ERROR(
        locks_->Acquire(txn, record_id, LockMode::kExclusive, &deps));
    if (versions_ != nullptr) {
      Status claim = versions_->ClaimWrite(txn, record_id,
                                           MvccManager::kNoSnapshotCheck);
      if (!claim.ok()) {
        if (claim.code() == StatusCode::kConflict) {
          std::unique_lock<std::mutex> lock(mu_);
          ++stats_.conflicts;
        }
        return claim;
      }
      MMDB_RETURN_IF_ERROR(TrackClaim(txn, record_id));
    }
  }

  std::string old_value;
  MMDB_RETURN_IF_ERROR(store_->ReadRecord(record_id, &old_value));

  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.txn_id = txn;
  rec.record_id = record_id;
  rec.old_value = old_value;
  rec.new_value.assign(new_value.data(), new_value.size());
  const Lsn lsn = wal_->Append(rec);

  MMDB_RETURN_IF_ERROR(store_->WriteRecord(record_id, new_value, lsn, fut_));

  std::unique_lock<std::mutex> lock(mu_);
  auto it = active_.find(txn);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  it->second.deps.insert(it->second.deps.end(), deps.begin(), deps.end());
  it->second.undo.push_back(
      UndoEntry{record_id, std::move(old_value), std::string(new_value)});
  return Status::OK();
}

Status TransactionManager::Commit(TxnId txn) {
  TxnState state;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = active_.find(txn);
    if (it == active_.end()) {
      return Status::FailedPrecondition("transaction not active");
    }
    state = std::move(it->second);
    active_.erase(it);
  }
  std::sort(state.deps.begin(), state.deps.end());
  state.deps.erase(std::unique(state.deps.begin(), state.deps.end()),
                   state.deps.end());

  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn_id = txn;
  // 1. Pre-commit: the commit record enters the log buffer.
  wal_->AppendCommit(std::move(rec), state.deps);
  // 1b. Stamp versions before releasing locks, so the commit timestamp
  // order respects serialization order (a dependent writer cannot even
  // acquire our locks, let alone claim our records, before this point).
  // Visibility follows §5.2 pre-commit: the new versions become readable
  // when the commit record is buffered, not when it is durable —
  // consistent with what lock-based readers observe.
  if (versions_ != nullptr && !state.claimed.empty()) {
    versions_->CommitTxn(txn, state.claimed);
  }
  if (versions_ != nullptr && state.mode == TxnMode::kSnapshot) {
    versions_->EndSnapshot(state.read_ts);
  }
  // 2. Locks release immediately — dependents may proceed.
  locks_->PreCommit(txn);
  // 3. Durability ("the user is not notified until...").
  wal_->WaitCommitDurable(txn);
  // 4. Finalize.
  locks_->FinalizeCommit(txn);
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.committed;
  }
  if (commit_hook_) commit_hook_(txn);
  return Status::OK();
}

Status TransactionManager::Abort(TxnId txn) {
  TxnState state;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = active_.find(txn);
    if (it == active_.end()) {
      return Status::FailedPrecondition("transaction not active");
    }
    state = std::move(it->second);
    active_.erase(it);
  }
  // Compensation updates, newest first: restore old values in memory and
  // in the log, so recovery can simply replay aborted transactions.
  for (auto it = state.undo.rbegin(); it != state.undo.rend(); ++it) {
    LogRecord rec;
    rec.type = LogRecordType::kUpdate;
    rec.txn_id = txn;
    rec.record_id = it->record_id;
    rec.old_value = it->new_value;  // compensation: swap directions
    rec.new_value = it->old_value;
    const Lsn lsn = wal_->Append(rec);
    MMDB_RETURN_IF_ERROR(
        store_->WriteRecord(it->record_id, it->old_value, lsn, fut_));
  }
  // Release MVCC claims only after the store holds the restored values:
  // readers that still see the pending pre-image node and readers that see
  // the store must agree.
  if (versions_ != nullptr && !state.claimed.empty()) {
    versions_->AbortTxn(txn, state.claimed);
  }
  if (versions_ != nullptr && state.mode == TxnMode::kSnapshot) {
    versions_->EndSnapshot(state.read_ts);
  }
  LogRecord abort_rec;
  abort_rec.type = LogRecordType::kAbort;
  abort_rec.txn_id = txn;
  // AppendCommit gives the abort record commit-like sealing semantics
  // (the stable log moves the txn's records to its output queue).
  wal_->AppendCommit(std::move(abort_rec), {});
  locks_->ReleaseAll(txn);
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.aborted;
  }
  return Status::OK();
}

TransactionManager::Stats TransactionManager::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

Lsn TransactionManager::OldestActiveBeginLsn() const {
  std::unique_lock<std::mutex> lock(mu_);
  Lsn oldest = kInvalidLsn;
  for (const auto& [txn, state] : active_) {
    if (state.begin_lsn == kInvalidLsn) continue;
    if (oldest == kInvalidLsn || state.begin_lsn < oldest) {
      oldest = state.begin_lsn;
    }
  }
  return oldest;
}

}  // namespace mmdb
