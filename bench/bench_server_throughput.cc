// DESIGN.md §10: closed-loop multi-session throughput through the server
// front end. Each client thread owns one session and drives a mixed
// read/write SQL workload (80% single-predicate SELECTs, 20% UPDATEs) as
// fast as the scheduler admits it; the sweep doubles the session count
// 1 -> 32 and reports tps and per-statement latency from the database
// metrics registry (server.bench.latency_us), plus the admission
// counters.
//
// The transactional plane is enabled with the group-commit WAL, so every
// write statement pays a real commit-durability wait (§5.2). That wait is
// what multi-session admission overlaps: one session alone stalls for the
// full log flush on each UPDATE, while N sessions share flushes — the
// paper's group-commit effect, and the reason tps rises with sessions
// even on a single-core host. Reads share the catalog latch and run
// concurrently throughout.
//
// Usage: bench_server_throughput [--smoke] [duration_ms_per_point]
//   --smoke: 2 sweep points x 150 ms — the ctest soak.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "server/server.h"

namespace mmdb {
namespace {

constexpr int64_t kRows = 2000;

struct SweepPoint {
  int sessions = 0;
  int64_t statements = 0;
  int64_t overloaded = 0;
  double tps = 0;
  double mean_latency_us = 0;
  int64_t max_latency_us = 0;
};

SweepPoint RunPoint(int sessions, int duration_ms) {
  Database db;
  MMDB_CHECK(db.ExecuteSql("CREATE TABLE acct (id INT64, owner CHAR(8), "
                           "balance DOUBLE)")
                 .ok());
  for (int64_t i = 0; i < kRows; ++i) {
    MMDB_CHECK(db.ExecuteSql("INSERT INTO acct VALUES (" + std::to_string(i) +
                             ", 'o" + std::to_string(i % 16) + "', " +
                             std::to_string(100.0 + double(i)) + ")")
                   .ok());
  }
  // Enable the §5 plane AFTER the bulk load so setup does not pay 2000
  // commit waits. From here on every write statement is made durable
  // through the group-commit log (1 ms simulated page write).
  Database::TxnPlaneOptions txn;
  txn.wal_kind = Database::TxnPlaneOptions::WalKind::kSingle;
  txn.log_write_latency = std::chrono::microseconds(1000);
  MMDB_CHECK(db.EnableTransactions(txn).ok());

  Server::Options opts;
  opts.scheduler.num_workers = sessions;
  opts.scheduler.max_queue_depth = 4 * sessions;
  opts.max_sessions = sessions;
  Server server(&db, opts);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> statements{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    clients.emplace_back([&, s] {
      auto session = server.OpenSession();
      MMDB_CHECK(session.ok());
      Random rng(static_cast<uint64_t>(17 + s));
      int64_t done = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int64_t id = static_cast<int64_t>(rng.Uniform(kRows));
        std::string sql;
        if (rng.Uniform(10) < 2) {
          sql = "UPDATE acct SET balance = " + std::to_string(double(id)) +
                " WHERE id = " + std::to_string(id);
        } else {
          sql = "SELECT id, balance FROM acct WHERE id = " +
                std::to_string(id);
        }
        const auto t0 = std::chrono::steady_clock::now();
        auto result = (*session)->ExecuteSql(sql);
        const int64_t us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (result.ok()) {
          db.metrics()->Record("server.bench.latency_us", us);
          ++done;
        } else if (result.status().code() != StatusCode::kOverloaded) {
          std::fprintf(stderr, "statement failed: %s\n",
                       result.status().ToString().c_str());
          break;
        }
        // kOverloaded: closed-loop backpressure — just retry.
      }
      statements.fetch_add(done, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();
  server.Shutdown();

  SweepPoint point;
  point.sessions = sessions;
  point.statements = statements.load();
  point.tps = 1000.0 * double(point.statements) / double(duration_ms);
  point.overloaded =
      db.metrics()->Get("server.admission.rejected_queue_full") +
      db.metrics()->Get("server.admission.rejected_session_cap");
  const MetricHistogram::Data lat =
      db.metrics()->histogram("server.bench.latency_us")->data();
  point.mean_latency_us = lat.Mean();
  point.max_latency_us = lat.max;
  return point;
}

}  // namespace
}  // namespace mmdb

int main(int argc, char** argv) {
  using namespace mmdb;
  bool smoke = false;
  int duration_ms = 1000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      duration_ms = std::atoi(argv[i]);
    }
  }
  if (smoke) duration_ms = std::min(duration_ms, 150);
  const std::vector<int> sweep =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16, 32};

  std::printf("== §10: closed-loop server throughput, %lld-row table, "
              "80/20 read/write, %d ms per point ==\n\n",
              static_cast<long long>(kRows), duration_ms);
  std::printf("%9s %12s %10s %14s %14s %12s\n", "sessions", "statements",
              "tps", "mean lat (us)", "max lat (us)", "overloaded");
  std::vector<SweepPoint> points;
  for (int sessions : sweep) {
    points.push_back(RunPoint(sessions, duration_ms));
    const SweepPoint& p = points.back();
    std::printf("%9d %12lld %10.0f %14.0f %14lld %12lld\n", p.sessions,
                static_cast<long long>(p.statements), p.tps,
                p.mean_latency_us, static_cast<long long>(p.max_latency_us),
                static_cast<long long>(p.overloaded));
  }
  if (points.size() >= 2 && points.back().tps <= points.front().tps) {
    std::printf("\nwarning: tps did not increase with sessions "
                "(%0.0f -> %0.0f)\n",
                points.front().tps, points.back().tps);
  }
  std::printf("\npaper (§5.2 adapted): with data memory-resident, a lone "
              "session stalls on every commit's log flush; admitting more "
              "sessions lets group commit amortize one flush across many "
              "write statements, so tps rises with sessions until the CPU "
              "or the write latch saturates.\n");
  return 0;
}
