#ifndef MMDB_INDEX_INDEX_STATS_H_
#define MMDB_INDEX_INDEX_STATS_H_

#include <cstdint>

namespace mmdb {

/// Operation counters shared by all access methods, matching the two cost
/// drivers of the paper's §2 model: |comparisons| (CPU) and |page reads|
/// (I/O). `cost = Z * page_faults + comparisons` prices one lookup.
struct IndexStats {
  int64_t comparisons = 0;
  int64_t node_visits = 0;
  int64_t page_faults = 0;

  void Reset() { *this = IndexStats{}; }

  IndexStats& operator+=(const IndexStats& o) {
    comparisons += o.comparisons;
    node_visits += o.node_visits;
    page_faults += o.page_faults;
    return *this;
  }

  /// Parallel-accounting discipline (same as CostClock::MergeFrom): the
  /// struct itself is not synchronized, so concurrent readers must keep a
  /// private IndexStats and fold it into the shared instance after their
  /// region completes. Totals are then independent of the work split.
  void MergeFrom(const IndexStats& o) { *this += o; }
};

}  // namespace mmdb

#endif  // MMDB_INDEX_INDEX_STATS_H_
