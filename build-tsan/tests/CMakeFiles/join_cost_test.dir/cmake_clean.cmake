file(REMOVE_RECURSE
  "CMakeFiles/join_cost_test.dir/join_cost_test.cc.o"
  "CMakeFiles/join_cost_test.dir/join_cost_test.cc.o.d"
  "join_cost_test"
  "join_cost_test.pdb"
  "join_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
