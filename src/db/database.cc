#include "db/database.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <mutex>
#include <shared_mutex>

#include "common/check.h"
#include "cost/access_cost.h"
#include "db/query_parser.h"
#include "optimizer/predicate.h"

namespace mmdb {

Database::Database(Options options)
    : options_(options),
      clock_(options.cost_params),
      disk_(options.page_size, &clock_),
      pool_(&disk_, options.buffer_pool_pages, options.buffer_policy),
      catalog_(options.page_size) {
  exec_ctx_.disk = &disk_;
  exec_ctx_.clock = &clock_;
  exec_ctx_.memory_pages = options.memory_pages;
  exec_ctx_.fudge = options.cost_params.fudge;
  // One registry for the whole database: the disk, buffer pool and query
  // executors count into it live.
  disk_.AttachMetrics(&metrics_);
  pool_.AttachMetrics(&metrics_);
  exec_ctx_.metrics = &metrics_;
  if (options.reuse_cache_bytes > 0) {
    ReuseCache::Options ro;
    ro.budget_bytes = options.reuse_cache_bytes;
    ro.min_cost_seconds = options.reuse_min_cost_seconds;
    reuse_cache_ = std::make_unique<ReuseCache>(ro);
    // Entries must not cross execution environments: the memory grant,
    // fudge factor and page size all change a hybrid join's spill split
    // and therefore its emission order.
    char tag[96];
    std::snprintf(tag, sizeof(tag), "m%lldf%.3gp%lld",
                  static_cast<long long>(options.memory_pages),
                  options.cost_params.fudge,
                  static_cast<long long>(options.page_size));
    reuse_cache_->SetEnvTag(tag);
    exec_ctx_.reuse_cache = reuse_cache_.get();
  }
}

void Database::SyncTxnPlaneMetrics() {
  if (!txn_enabled_) return;
  const Wal::Stats ws = wal_->stats();
  metrics_.Set("log.device_writes", ws.device_writes);
  metrics_.Set("log.device_bytes", ws.device_bytes);
  metrics_.Set("log.logical_bytes", ws.logical_bytes);
  metrics_.Set("log.commits", ws.commits);
  metrics_.Set("log.io_retries", ws.io_retries);
  metrics_.Set("log.write_failures", ws.write_failures);
  const TransactionManager::Stats ts = txn_manager_->stats();
  metrics_.Set("txn.begun", ts.begun);
  metrics_.Set("txn.committed", ts.committed);
  metrics_.Set("txn.aborted", ts.aborted);
  metrics_.Set("txn.snapshot_begun", ts.snapshot_begun);
  metrics_.Set("txn.conflicts", ts.conflicts);
  if (versions_ != nullptr) {
    const MvccManager::Stats vs = versions_->stats();
    metrics_.Set("mvcc.versions_stored", vs.versions_stored);
    metrics_.Set("mvcc.versions_gced", vs.versions_gced);
    metrics_.Set("mvcc.chain_reads", vs.chain_reads);
    metrics_.Set("mvcc.direct_reads", vs.direct_reads);
    metrics_.Set("mvcc.conflicts", vs.conflicts);
    metrics_.Set("mvcc.commits", vs.commits);
    metrics_.Set("mvcc.aborts", vs.aborts);
  }
  const LockManager::Stats ls = lock_manager_->stats();
  metrics_.Set("locks.acquisitions", ls.acquisitions);
  metrics_.Set("locks.waits", ls.waits);
  metrics_.Set("locks.deadlocks", ls.deadlocks);
  metrics_.Set("locks.dependencies_recorded", ls.dependencies_recorded);
  metrics_.Set("checkpoint.pages_written",
               checkpointer_->total_pages_written());
  if (backup_ != nullptr) {
    const BackupManager::Stats bs = backup_->stats();
    metrics_.Set("backup.backups_taken", bs.backups_taken);
    metrics_.Set("backup.incremental_backups", bs.incremental_backups);
    metrics_.Set("backup.pages_copied", bs.pages_copied);
    metrics_.Set("backup.pages_skipped", bs.pages_skipped);
    metrics_.Set("backup.log_records_captured", bs.log_records_captured);
    metrics_.Set("backup.last_end_lsn", bs.last_end_lsn);
  }
  if (recovery_ctl_ != nullptr) {
    const RecoveryStats rs = recovery_ctl_->stats();
    metrics_.Set("recovery.instant.pending", recovery_ctl_->remaining());
    metrics_.Set("recovery.instant.complete",
                 recovery_ctl_->complete() ? 1 : 0);
    metrics_.Set("recovery.instant.index_records", rs.pending_records);
    metrics_.Set("recovery.analysis.ms",
                 static_cast<int64_t>(rs.analysis_seconds * 1e3));
    metrics_.Set("recovery.ondemand.records", rs.ondemand_records);
    metrics_.Set("recovery.ondemand.replayed", rs.ondemand_replayed);
    metrics_.Set("recovery.ondemand.budget_exceeded",
                 rs.ondemand_budget_exceeded);
    metrics_.Set("recovery.ondemand.ms",
                 static_cast<int64_t>(rs.ondemand_seconds * 1e3));
    metrics_.Set("recovery.sweep.records", rs.sweep_records);
    metrics_.Set("recovery.sweep.replayed", rs.sweep_replayed);
    metrics_.Set("recovery.sweep.ms",
                 static_cast<int64_t>(rs.sweep_seconds * 1e3));
  }
}

MetricsRegistry::Snapshot Database::MetricsSnapshot() {
  SyncTxnPlaneMetrics();
  if (reuse_cache_ != nullptr) {
    // Absolute values Set (not Add-ed through statement shards): the cache
    // keeps its own counters, the registry mirrors them per snapshot.
    const ReuseCache::Stats cs = reuse_cache_->stats();
    metrics_.Set("cache.reuse.hits", cs.hits);
    metrics_.Set("cache.reuse.build_hits", cs.build_hits);
    metrics_.Set("cache.reuse.misses", cs.misses);
    metrics_.Set("cache.reuse.installs", cs.installs);
    metrics_.Set("cache.reuse.rejected", cs.rejected);
    metrics_.Set("cache.reuse.evictions", cs.evictions);
    metrics_.Set("cache.reuse.invalidations", cs.invalidations);
    metrics_.Set("cache.reuse.bytes", cs.bytes);
    metrics_.Set("cache.reuse.entries", cs.entries);
  }
  return metrics_.TakeSnapshot();
}

std::string Database::MetricsJson() { return MetricsSnapshot().ToJson(); }

Status Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name)) return Status::AlreadyExists("table " + name);
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("table needs at least one column");
  }
  TableHolder holder;
  holder.relation = Relation(std::move(schema));
  tables_[name] = std::move(holder);
  InvalidateCatalog();
  return Status::OK();
}

Status Database::Insert(const std::string& name, Row row) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  TableHolder& table = it->second;
  const Schema& schema = table.relation.schema();
  if (static_cast<int>(row.size()) != schema.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (TypeOf(row[static_cast<size_t>(c)]) != schema.column(c).type) {
      return Status::InvalidArgument("type mismatch in column " +
                                     schema.column(c).name);
    }
  }
  const int64_t ordinal = table.relation.num_tuples();
  // Maintain indexes.
  for (auto& [col_name, index] : table.indexes) {
    const Value& key = row[static_cast<size_t>(index.column)];
    switch (index.type) {
      case IndexType::kAvl:
        index.avl->Insert(key, ordinal);
        break;
      case IndexType::kBTree: {
        std::vector<char> kbuf(static_cast<size_t>(index.key_width));
        if (TypeOf(key) == ValueType::kInt64) {
          BPlusTree::EncodeInt64Key(std::get<int64_t>(key), kbuf.data(),
                                    index.key_width);
        } else if (TypeOf(key) == ValueType::kString) {
          BPlusTree::EncodeStringKey(std::get<std::string>(key), kbuf.data(),
                                     index.key_width);
        } else {
          return Status::InvalidArgument("unsupported B+-tree key type");
        }
        char payload[8];
        std::memcpy(payload, &ordinal, sizeof(ordinal));
        MMDB_RETURN_IF_ERROR(index.btree->Insert(kbuf.data(), payload));
        break;
      }
      case IndexType::kHash:
        index.hash->Insert(key, ordinal);
        break;
      case IndexType::kAuto:
        return Status::Internal("unresolved index type");
    }
  }
  table.relation.Add(std::move(row));
  InvalidateCatalog();
  if (reuse_cache_ != nullptr) reuse_cache_->InvalidateTable(name);
  return Status::OK();
}

Status Database::BulkLoad(const std::string& name, Relation relation) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  if (!(relation.schema() == it->second.relation.schema())) {
    return Status::InvalidArgument("schema mismatch in bulk load");
  }
  for (Row& row : relation.mutable_rows()) {
    MMDB_RETURN_IF_ERROR(Insert(name, std::move(row)));
  }
  InvalidateCatalog();
  return Status::OK();
}

StatusOr<const Relation*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  return &it->second.relation;
}

AccessModelParams Database::ModelFor(const TableHolder& table,
                                     int column) const {
  AccessModelParams p;
  p.num_tuples = std::max<int64_t>(1, table.relation.num_tuples());
  p.tuple_width = table.relation.schema().record_size();
  p.key_width = table.relation.schema().column(column).width;
  p.page_size = options_.page_size;
  return p;
}

StatusOr<Database::IndexType> Database::PickIndexType(
    const std::string& table_name, const std::string& column) const {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) return Status::NotFound("table " + table_name);
  MMDB_ASSIGN_OR_RETURN(int col,
                        it->second.relation.schema().ColumnIndex(column));
  const AccessModelParams p = ModelFor(it->second, col);
  // H = fraction of the structure (≈ the database) resident given our
  // buffer budget; AVL wins only above the §2 break-even threshold.
  const double structure_pages =
      double(p.num_tuples) * (p.tuple_width + 2.0 * p.pointer_width) /
      double(p.page_size);
  const double h =
      std::min(1.0, double(options_.buffer_pool_pages) / structure_pages);
  return h >= BreakEvenH(p) ? IndexType::kAvl : IndexType::kBTree;
}

Status Database::BuildIndex(TableHolder* table, const std::string& table_name,
                            const std::string& column, IndexType type) {
  MMDB_ASSIGN_OR_RETURN(int col,
                        table->relation.schema().ColumnIndex(column));
  IndexHolder index;
  index.type = type;
  index.column = col;
  const Column& col_def = table->relation.schema().column(col);
  index.key_width = col_def.type == ValueType::kString
                        ? std::min<int32_t>(col_def.width, 32)
                        : 8;
  switch (type) {
    case IndexType::kAvl: {
      index.avl = std::make_unique<AvlTree>();
      int64_t ordinal = 0;
      for (const Row& row : table->relation.rows()) {
        index.avl->Insert(row[static_cast<size_t>(col)], ordinal++);
      }
      break;
    }
    case IndexType::kBTree: {
      index.btree_file = std::make_unique<PageFile>(
          &disk_, "btree_" + table_name + "_" + column);
      BTreeOptions bopts;
      bopts.key_width = index.key_width;
      bopts.payload_width = 8;
      index.btree = std::make_unique<BPlusTree>(&pool_, index.btree_file.get(),
                                                bopts);
      std::vector<char> kbuf(static_cast<size_t>(index.key_width));
      int64_t ordinal = 0;
      for (const Row& row : table->relation.rows()) {
        const Value& key = row[static_cast<size_t>(col)];
        if (TypeOf(key) == ValueType::kInt64) {
          BPlusTree::EncodeInt64Key(std::get<int64_t>(key), kbuf.data(),
                                    index.key_width);
        } else if (TypeOf(key) == ValueType::kString) {
          BPlusTree::EncodeStringKey(std::get<std::string>(key), kbuf.data(),
                                     index.key_width);
        } else {
          return Status::InvalidArgument("unsupported B+-tree key type");
        }
        char payload[8];
        std::memcpy(payload, &ordinal, sizeof(ordinal));
        MMDB_RETURN_IF_ERROR(index.btree->Insert(kbuf.data(), payload));
        ++ordinal;
      }
      break;
    }
    case IndexType::kHash: {
      index.hash = std::make_unique<HashIndex>();
      int64_t ordinal = 0;
      for (const Row& row : table->relation.rows()) {
        index.hash->Insert(row[static_cast<size_t>(col)], ordinal++);
      }
      break;
    }
    case IndexType::kAuto:
      return Status::Internal("kAuto must be resolved by caller");
  }
  table->indexes[column] = std::move(index);
  return Status::OK();
}

Status Database::CreateIndex(const std::string& table_name,
                             const std::string& column, IndexType type) {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) return Status::NotFound("table " + table_name);
  if (it->second.indexes.count(column)) {
    return Status::AlreadyExists("index on " + table_name + "." + column);
  }
  if (type == IndexType::kAuto) {
    MMDB_ASSIGN_OR_RETURN(type, PickIndexType(table_name, column));
  }
  MMDB_RETURN_IF_ERROR(BuildIndex(&it->second, table_name, column, type));
  InvalidateCatalog();  // the planner must learn about the new index
  return Status::OK();
}

StatusOr<Row> Database::RowByOrdinal(const TableHolder& table,
                                     int64_t ordinal) const {
  if (ordinal < 0 || ordinal >= table.relation.num_tuples()) {
    return Status::Internal("index payload out of range");
  }
  return table.relation.rows()[static_cast<size_t>(ordinal)];
}

StatusOr<Row> Database::IndexLookup(const std::string& table_name,
                                    const std::string& column,
                                    const Value& key) {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) return Status::NotFound("table " + table_name);
  auto idx_it = it->second.indexes.find(column);
  if (idx_it == it->second.indexes.end()) {
    return Status::NotFound("no index on " + table_name + "." + column);
  }
  IndexHolder& index = idx_it->second;
  std::lock_guard<std::mutex> index_latch(*index.latch);
  switch (index.type) {
    case IndexType::kAvl: {
      MMDB_ASSIGN_OR_RETURN(int64_t ordinal, index.avl->Find(key));
      return RowByOrdinal(it->second, ordinal);
    }
    case IndexType::kBTree: {
      std::vector<char> kbuf(static_cast<size_t>(index.key_width));
      if (TypeOf(key) == ValueType::kInt64) {
        BPlusTree::EncodeInt64Key(std::get<int64_t>(key), kbuf.data(),
                                  index.key_width);
      } else if (TypeOf(key) == ValueType::kString) {
        BPlusTree::EncodeStringKey(std::get<std::string>(key), kbuf.data(),
                                   index.key_width);
      } else {
        return Status::InvalidArgument("unsupported B+-tree key type");
      }
      char payload[8];
      MMDB_RETURN_IF_ERROR(index.btree->Find(kbuf.data(), payload));
      int64_t ordinal;
      std::memcpy(&ordinal, payload, sizeof(ordinal));
      return RowByOrdinal(it->second, ordinal);
    }
    case IndexType::kHash: {
      MMDB_ASSIGN_OR_RETURN(int64_t ordinal, index.hash->Find(key));
      return RowByOrdinal(it->second, ordinal);
    }
    case IndexType::kAuto:
      break;
  }
  return Status::Internal("unresolved index type");
}

Status Database::IndexRangeScan(const std::string& table_name,
                                const std::string& column, const Value& low,
                                int64_t limit,
                                const std::function<bool(const Row&)>& fn) {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) return Status::NotFound("table " + table_name);
  auto idx_it = it->second.indexes.find(column);
  if (idx_it == it->second.indexes.end()) {
    return Status::NotFound("no index on " + table_name + "." + column);
  }
  IndexHolder& index = idx_it->second;
  std::lock_guard<std::mutex> index_latch(*index.latch);
  return IndexRangeScanLocked(it->second, index, low, limit, fn);
}

Status Database::IndexRangeScanLocked(
    const TableHolder& table, IndexHolder& index, const Value& low,
    int64_t limit, const std::function<bool(const Row&)>& fn) {
  switch (index.type) {
    case IndexType::kAvl: {
      Status status = Status::OK();
      index.avl->ScanFrom(
          low,
          [&](const Value&, int64_t ordinal) {
            StatusOr<Row> row = RowByOrdinal(table, ordinal);
            if (!row.ok()) {
              status = row.status();
              return false;
            }
            return fn(*row);
          },
          limit);
      return status;
    }
    case IndexType::kBTree: {
      std::vector<char> kbuf(static_cast<size_t>(index.key_width));
      if (TypeOf(low) == ValueType::kInt64) {
        BPlusTree::EncodeInt64Key(std::get<int64_t>(low), kbuf.data(),
                                  index.key_width);
      } else if (TypeOf(low) == ValueType::kString) {
        BPlusTree::EncodeStringKey(std::get<std::string>(low), kbuf.data(),
                                   index.key_width);
      } else {
        return Status::InvalidArgument("unsupported B+-tree key type");
      }
      Status status = Status::OK();
      MMDB_RETURN_IF_ERROR(index.btree->ScanFrom(
          kbuf.data(),
          [&](const char*, const char* payload) {
            int64_t ordinal;
            std::memcpy(&ordinal, payload, sizeof(ordinal));
            StatusOr<Row> row = RowByOrdinal(table, ordinal);
            if (!row.ok()) {
              status = row.status();
              return false;
            }
            return fn(*row);
          },
          limit));
      return status;
    }
    case IndexType::kHash:
      return Status::FailedPrecondition(
          "hash indexes do not support ordered scans");
    case IndexType::kAuto:
      break;
  }
  return Status::Internal("unresolved index type");
}

const Catalog& Database::catalog() {
  // Double-checked rebuild: concurrent read statements may all ask for the
  // catalog; only the first rebuilds (under catalog_mu_), the rest either
  // wait on the mutex or see the release-published clean flag.
  if (!catalog_dirty_.load(std::memory_order_acquire)) return catalog_;
  std::lock_guard<std::mutex> lock(catalog_mu_);
  if (catalog_dirty_.load(std::memory_order_relaxed)) {
    catalog_ = Catalog(options_.page_size);
    for (const auto& [name, table] : tables_) {
      Status s = catalog_.RegisterTable(name, &table.relation);
      MMDB_CHECK_MSG(s.ok(), s.ToString().c_str());
      for (const auto& [column, index] : table.indexes) {
        IndexKind kind = IndexKind::kHash;
        switch (index.type) {
          case IndexType::kAvl:
            kind = IndexKind::kAvl;
            break;
          case IndexType::kBTree:
            kind = IndexKind::kBTree;
            break;
          case IndexType::kHash:
          case IndexType::kAuto:
            kind = IndexKind::kHash;
            break;
        }
        s = catalog_.RegisterIndex(name, column, kind);
        MMDB_CHECK_MSG(s.ok(), s.ToString().c_str());
      }
    }
    catalog_dirty_.store(false, std::memory_order_release);
  }
  return catalog_;
}

StatusOr<Relation> Database::IndexLookupAll(const std::string& table_name,
                                            const Predicate& pred,
                                            ExecContext* ctx) {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) return Status::NotFound("table " + table_name);
  auto idx_it = it->second.indexes.find(pred.column);
  if (idx_it == it->second.indexes.end()) {
    return Status::NotFound("no index on " + table_name + "." + pred.column);
  }
  IndexHolder& index = idx_it->second;
  const TableHolder& table = it->second;
  // Concurrent statements serialize on the index latch (the structures
  // mutate their operation counters on lookup) but charge their own clock.
  std::lock_guard<std::mutex> index_latch(*index.latch);
  CostClock* clock =
      ctx != nullptr && ctx->clock != nullptr ? ctx->clock : &clock_;
  Relation out(table.relation.schema());
  auto emit = [&](int64_t ordinal) -> Status {
    MMDB_ASSIGN_OR_RETURN(Row row, RowByOrdinal(table, ordinal));
    out.Add(std::move(row));
    return Status::OK();
  };

  if (pred.op == CmpOp::kEq) {
    switch (index.type) {
      case IndexType::kHash: {
        const int64_t comps_before = index.hash->stats().comparisons;
        Status status = Status::OK();
        clock->Hash();
        index.hash->FindAll(pred.literal, [&](int64_t ordinal) {
          if (status.ok()) status = emit(ordinal);
        });
        clock->Comp(index.hash->stats().comparisons - comps_before);
        return status.ok() ? StatusOr<Relation>(std::move(out))
                           : StatusOr<Relation>(status);
      }
      case IndexType::kAvl: {
        const int64_t comps_before = index.avl->stats().comparisons;
        Status status = Status::OK();
        index.avl->ScanFrom(pred.literal, [&](const Value& k, int64_t ord) {
          if (!ValuesEqual(k, pred.literal)) return false;
          if (status.ok()) status = emit(ord);
          return status.ok();
        });
        clock->Comp(index.avl->stats().comparisons - comps_before);
        return status.ok() ? StatusOr<Relation>(std::move(out))
                           : StatusOr<Relation>(status);
      }
      case IndexType::kBTree:
        break;  // handled below via the shared ordered-scan path
      case IndexType::kAuto:
        return Status::Internal("unresolved index type");
    }
  }
  // Ordered scans: B+-tree equality, and AVL/B+-tree prefix queries.
  const bool prefix = pred.op == CmpOp::kPrefix;
  if (!prefix && pred.op != CmpOp::kEq) {
    return Status::InvalidArgument("IndexLookupAll serves = and LIKE only");
  }
  if (index.type == IndexType::kHash) {
    return Status::FailedPrecondition("hash index cannot serve a prefix");
  }
  Status status = Status::OK();
  auto qualifies = [&](const Value& key) {
    if (!prefix) return ValuesEqual(key, pred.literal);
    if (TypeOf(key) != ValueType::kString) return false;
    const std::string& s = std::get<std::string>(key);
    const std::string& p = std::get<std::string>(pred.literal);
    return s.size() >= p.size() && s.compare(0, p.size(), p) == 0;
  };
  const int col_index = index.column;
  MMDB_RETURN_IF_ERROR(IndexRangeScanLocked(
      table, index, pred.literal, /*limit=*/-1,
      [&](const Row& row) {
        clock->Comp();
        if (!qualifies(row[size_t(col_index)])) return false;  // past range
        if (status.ok()) {
          out.Add(row);
        }
        return status.ok();
      }));
  MMDB_RETURN_IF_ERROR(status);
  return out;
}

StatusOr<QueryResult> Database::ExecuteWith(const Query& query,
                                            ExecContext* ctx) {
  OptimizerOptions opts;
  opts.memory_pages = options_.memory_pages;
  opts.cost_params = options_.cost_params;
  opts.w_cpu = options_.w_cpu;
  opts.hash_only = options_.planner_hash_only;
  opts.vectorize = options_.vectorize;
  opts.reuse_cache = reuse_cache_.get();
  opts.reuse_cost_discounts = options_.reuse_plan_discounts;
  return RunQuery(query, catalog(), opts, ctx, this);
}

StatusOr<QueryResult> Database::Execute(const Query& query) {
  return ExecuteWith(query, &exec_ctx_);
}

StatusOr<Relation> Database::ExecuteAggregate(const Query& query,
                                              const AggregateSpec& agg) {
  MMDB_ASSIGN_OR_RETURN(QueryResult result, Execute(query));
  return HashAggregate(result.relation, agg, &exec_ctx_);
}

StatusOr<std::string> Database::Explain(const Query& query) {
  OptimizerOptions opts;
  opts.memory_pages = options_.memory_pages;
  opts.cost_params = options_.cost_params;
  opts.w_cpu = options_.w_cpu;
  opts.hash_only = options_.planner_hash_only;
  opts.vectorize = options_.vectorize;
  opts.reuse_cache = reuse_cache_.get();
  opts.reuse_cost_discounts = options_.reuse_plan_discounts;
  Optimizer optimizer(&catalog(), opts);
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> plan,
                        optimizer.Optimize(query));
  return plan->ToString();
}

bool Database::IsWriteSql(const std::string& sql) {
  size_t i = 0;
  while (i < sql.size() &&
         std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  std::string kw;
  while (i < sql.size() &&
         std::isalpha(static_cast<unsigned char>(sql[i]))) {
    kw.push_back(static_cast<char>(
        std::toupper(static_cast<unsigned char>(sql[i]))));
    ++i;
  }
  return kw == "CREATE" || kw == "INSERT" || kw == "UPDATE";
}

StatusOr<Database::SqlResult> Database::ExecuteSql(const std::string& sql) {
  TxnId durable_txn = kInvalidTxn;
  StatusOr<SqlResult> result = ExecuteSqlPreCommit(sql, &durable_txn);
  WaitSqlDurable(durable_txn);
  return result;
}

StatusOr<Database::SqlResult> Database::ExecuteSqlPreCommit(
    const std::string& sql, TxnId* durable_txn) {
  *durable_txn = kInvalidTxn;
  if (IsWriteSql(sql)) {
    // Parse under the SHARED latch (the parser only reads the catalog), so
    // concurrent writers overlap their parse work and the exclusive
    // section shrinks to the statement's actual apply. Name resolution is
    // re-done under the exclusive latch, so a DDL racing in between can
    // only turn this statement into a clean error, never corrupt it.
    StatusOr<ParsedStatement> parsed = [&]() -> StatusOr<ParsedStatement> {
      std::shared_lock<std::shared_mutex> shared(latch_);
      return ParseStatement(sql, catalog());
    }();
    if (!parsed.ok()) return parsed.status();
    std::unique_lock<std::shared_mutex> lock(latch_);
    StatusOr<SqlResult> result = ExecuteSqlWriteLocked(*parsed);
    // §5.2 pre-commit at statement granularity: with the transactional
    // plane enabled, a successful write statement appends a commit record
    // while still holding the latch — log order therefore matches latch
    // order, so a later statement that read this one's effects commits
    // after it — and leaves the durability wait to the caller. Concurrent
    // sessions' waits then land in the same group-commit flush, the
    // paper's mechanism for beating one-log-write-per-commit.
    if (result.ok() && txn_enabled_ && wal_ != nullptr) {
      LogRecord rec;
      rec.type = LogRecordType::kCommit;
      rec.txn_id = next_sql_stmt_txn_.fetch_add(1, std::memory_order_relaxed);
      wal_->AppendCommit(rec, {});
      *durable_txn = rec.txn_id;
    }
    return result;
  }
  std::shared_lock<std::shared_mutex> lock(latch_);
  return ExecuteSqlReadLocked(sql);
}

void Database::WaitSqlDurable(TxnId txn) {
  if (txn == kInvalidTxn || wal_ == nullptr) return;
  wal_->WaitCommitDurable(txn);
}

bool Database::RowLockEligible(
    const std::string& table, const std::string& where_column,
    const std::vector<std::string>& set_columns) const {
  std::shared_lock<std::shared_mutex> lock(latch_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return false;
  const Schema& schema = it->second.relation.schema();
  if (schema.num_columns() == 0) return false;
  const std::string& key_column = schema.column(0).name;
  if (where_column != key_column) return false;
  for (const std::string& set_column : set_columns) {
    if (set_column == key_column) return false;
  }
  return true;
}

StatusOr<Database::SqlResult> Database::ExecuteSqlReadLocked(
    const std::string& sql) {
  MMDB_ASSIGN_OR_RETURN(ParsedStatement stmt, ParseStatement(sql, catalog()));
  // Statement-local context: each concurrent reader charges a private
  // clock and metrics shard, merged when the statement finishes. Addition
  // commutes, so N statements produce the same totals in any interleaving
  // as they would serially (the same discipline the DOP>1 operators use).
  CostClock local_clock(options_.cost_params);
  MetricsRegistry local_metrics;
  ExecContext ctx = exec_ctx_;
  ctx.clock = &local_clock;
  ctx.metrics = &local_metrics;
  struct MergeOnExit {
    Database* db;
    CostClock* clock;
    MetricsRegistry* shard;
    ~MergeOnExit() {
      // The disk owns the only lock that already serializes charges to the
      // global clock (checkpointer, parallel spills), so merge through it.
      db->disk_.MergeClock(*clock);
      db->metrics_.MergeFrom(*shard);
    }
  } merge{this, &local_clock, &local_metrics};

  SqlResult result;
  switch (stmt.kind) {
    case ParsedStatement::Kind::kExplain: {
      MMDB_ASSIGN_OR_RETURN(result.plan_text, Explain(stmt.query));
      return result;
    }
    case ParsedStatement::Kind::kExplainAnalyze: {
      OptimizerOptions opts;
      opts.memory_pages = options_.memory_pages;
      opts.cost_params = options_.cost_params;
      opts.w_cpu = options_.w_cpu;
      opts.hash_only = options_.planner_hash_only;
      opts.vectorize = options_.vectorize;
      opts.reuse_cache = reuse_cache_.get();
      opts.reuse_cost_discounts = options_.reuse_plan_discounts;
      Optimizer optimizer(&catalog(), opts);
      MMDB_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> plan,
                            optimizer.Optimize(stmt.query));
      PlanRunTrace trace;
      MMDB_ASSIGN_OR_RETURN(
          Relation rel, ExecutePlan(*plan, catalog(), &ctx, this, &trace));
      std::string text = RenderAnalyzedPlan(*plan, trace);
      if (stmt.aggregate.has_value() || stmt.distinct) {
        // Aggregation runs on top of the plan tree (§4: it composes freely
        // over any join order); summarize it as one extra line so EXPLAIN
        // ANALYZE covers the whole statement.
        AggStats agg_stats;
        const double seconds_before = local_clock.Seconds();
        if (stmt.aggregate.has_value()) {
          MMDB_ASSIGN_OR_RETURN(
              result.relation,
              HashAggregate(rel, *stmt.aggregate, &ctx, &agg_stats));
        } else {
          std::vector<int> all(size_t(rel.schema().num_columns()));
          for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
          MMDB_ASSIGN_OR_RETURN(
              result.relation, ProjectDistinct(rel, all, &ctx, &agg_stats));
        }
        char buf[160];
        std::snprintf(
            buf, sizeof(buf),
            "%s\n    (actual groups=%lld %s partitions=%lld cost=%.3fs)\n",
            stmt.aggregate.has_value() ? "HashAggregate" : "ProjectDistinct",
            static_cast<long long>(agg_stats.groups),
            agg_stats.one_pass ? "one-pass" : "partitioned",
            static_cast<long long>(agg_stats.partitions),
            local_clock.Seconds() - seconds_before);
        text += buf;
      } else {
        result.relation = std::move(rel);
      }
      result.plan_text = std::move(text);
      result.analyzed = true;
      return result;
    }
    case ParsedStatement::Kind::kSelect: {
      MMDB_ASSIGN_OR_RETURN(QueryResult qr, ExecuteWith(stmt.query, &ctx));
      result.plan_text = std::move(qr.plan_text);
      if (stmt.aggregate.has_value()) {
        MMDB_ASSIGN_OR_RETURN(
            result.relation,
            HashAggregate(qr.relation, *stmt.aggregate, &ctx));
      } else if (stmt.distinct) {
        std::vector<int> all(size_t(qr.relation.schema().num_columns()));
        for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
        MMDB_ASSIGN_OR_RETURN(result.relation,
                              ProjectDistinct(qr.relation, all, &ctx));
      } else {
        result.relation = std::move(qr.relation);
      }
      return result;
    }
    case ParsedStatement::Kind::kCreateTable:
    case ParsedStatement::Kind::kInsert:
    case ParsedStatement::Kind::kUpdate:
      return Status::Internal("statement classification mismatch: write "
                              "statement on the read path");
  }
  return Status::Internal("unhandled statement kind");
}

StatusOr<Database::SqlResult> Database::ExecuteSqlWriteLocked(
    const ParsedStatement& stmt_in) {
  ParsedStatement stmt = stmt_in;
  SqlResult result;
  switch (stmt.kind) {
    case ParsedStatement::Kind::kCreateTable: {
      MMDB_RETURN_IF_ERROR(CreateTable(stmt.table_name, stmt.schema));
      return result;
    }
    case ParsedStatement::Kind::kInsert: {
      MMDB_ASSIGN_OR_RETURN(const Relation* table, GetTable(stmt.table_name));
      const Schema& schema = table->schema();
      for (Row& row : stmt.rows) {
        // Numeric coercion: integer literals into DOUBLE columns.
        if (static_cast<int>(row.size()) == schema.num_columns()) {
          for (int c = 0; c < schema.num_columns(); ++c) {
            if (schema.column(c).type == ValueType::kDouble &&
                std::holds_alternative<int64_t>(row[size_t(c)])) {
              row[size_t(c)] =
                  Value{double(std::get<int64_t>(row[size_t(c)]))};
            }
          }
        }
        MMDB_RETURN_IF_ERROR(Insert(stmt.table_name, std::move(row)));
        ++result.rows_affected;
      }
      return result;
    }
    case ParsedStatement::Kind::kUpdate: {
      MMDB_RETURN_IF_ERROR(ExecuteUpdateLocked(stmt, &result.rows_affected));
      return result;
    }
    case ParsedStatement::Kind::kSelect:
    case ParsedStatement::Kind::kExplain:
    case ParsedStatement::Kind::kExplainAnalyze:
      return Status::Internal("statement classification mismatch: read "
                              "statement on the write path");
  }
  return Status::Internal("unhandled statement kind");
}

Status Database::ExecuteUpdateLocked(const ParsedStatement& stmt,
                                     int64_t* rows_affected) {
  auto it = tables_.find(stmt.table_name);
  if (it == tables_.end()) return Status::NotFound("table " + stmt.table_name);
  TableHolder& table = it->second;
  const Schema& schema = table.relation.schema();
  std::vector<std::pair<int, const Value*>> sets;
  sets.reserve(stmt.set_clauses.size());
  for (const ParsedStatement::SetClause& sc : stmt.set_clauses) {
    MMDB_ASSIGN_OR_RETURN(int idx, schema.ColumnIndex(sc.column));
    sets.emplace_back(idx, &sc.value);
  }
  std::vector<int> filter_cols;
  filter_cols.reserve(stmt.query.filters.size());
  for (const Predicate& p : stmt.query.filters) {
    MMDB_ASSIGN_OR_RETURN(int idx, schema.ColumnIndex(p.column));
    filter_cols.push_back(idx);
  }
  // Point-update fast path (DESIGN.md §11): a single equality predicate on
  // an indexed column resolves its target ordinals through the index
  // instead of scanning the table, shrinking the exclusive-latch section
  // that the server's row-granularity point writers serialize on.
  std::vector<int64_t> ordinals;
  bool fast_path = false;
  if (stmt.query.filters.size() == 1 &&
      stmt.query.filters[0].op == CmpOp::kEq) {
    const Predicate& pred = stmt.query.filters[0];
    auto idx_it = table.indexes.find(pred.column);
    if (idx_it != table.indexes.end()) {
      IndexHolder& index = idx_it->second;
      if (TypeOf(pred.literal) == schema.column(filter_cols[0]).type &&
          (index.type == IndexType::kHash || index.type == IndexType::kAvl)) {
        std::lock_guard<std::mutex> index_latch(*index.latch);
        if (index.type == IndexType::kHash) {
          index.hash->FindAll(pred.literal,
                              [&](int64_t ord) { ordinals.push_back(ord); });
        } else {
          index.avl->ScanFrom(pred.literal,
                              [&](const Value& key, int64_t ord) {
                                if (!ValuesEqual(key, pred.literal)) {
                                  return false;
                                }
                                ordinals.push_back(ord);
                                return true;
                              });
        }
        fast_path = true;
      }
    }
  }
  // Charge a local clock and merge through the disk (whose mutex already
  // serializes global-clock charges against the checkpointer's I/O).
  CostClock local_clock(options_.cost_params);
  int64_t matched = 0;
  if (fast_path) {
    std::vector<Row>& rows = table.relation.mutable_rows();
    for (int64_t ord : ordinals) {
      if (ord < 0 || ord >= static_cast<int64_t>(rows.size())) continue;
      Row& row = rows[static_cast<size_t>(ord)];
      local_clock.Comp();
      // Re-verify against the live row: one comparison buys immunity to
      // any future index-staleness bug on this write path.
      if (!EvalPredicate(stmt.query.filters[0], row, filter_cols[0])) {
        continue;
      }
      for (const std::pair<int, const Value*>& set : sets) {
        local_clock.Move();
        row[static_cast<size_t>(set.first)] = *set.second;
      }
      ++matched;
    }
    metrics_.Add("sql.update.index_fast_path", 1);
  } else {
    for (Row& row : table.relation.mutable_rows()) {
      bool match = true;
      for (size_t i = 0; i < stmt.query.filters.size(); ++i) {
        local_clock.Comp();
        if (!EvalPredicate(stmt.query.filters[i], row, filter_cols[i])) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      for (const std::pair<int, const Value*>& set : sets) {
        local_clock.Move();
        row[static_cast<size_t>(set.first)] = *set.second;
      }
      ++matched;
    }
  }
  disk_.MergeClock(local_clock);
  // Rebuild any index whose key column was assigned: the §2 structures
  // have no delete path, and an UPDATE touching an indexed key is rare
  // enough that a rebuild is the simplest correct maintenance.
  std::vector<std::pair<std::string, IndexType>> rebuilds;
  for (const auto& entry : table.indexes) {
    for (const std::pair<int, const Value*>& set : sets) {
      if (entry.second.column == set.first) {
        rebuilds.emplace_back(entry.first, entry.second.type);
        break;
      }
    }
  }
  for (const std::pair<std::string, IndexType>& rebuild : rebuilds) {
    table.indexes.erase(rebuild.first);
    MMDB_RETURN_IF_ERROR(
        BuildIndex(&table, stmt.table_name, rebuild.first, rebuild.second));
  }
  // UPDATE changes no schema, cardinality or index set, so the catalog
  // stays valid; only an index rebuild must be re-registered. Column
  // value statistics go stale until the next invalidation — the standard
  // stale-statistics trade every optimizer makes (a per-update stats
  // rescan would serialize the whole session mix behind catalog_mu_).
  if (!rebuilds.empty()) InvalidateCatalog();
  // Reuse-cache invalidation (DESIGN.md §15) runs under the exclusive
  // latch, before any reader can plan against the new data: the version
  // bump retires every fingerprint that read this table, and the entries
  // drop eagerly. The table name here is the same string the server's
  // table-lock namespace uses, so a locked writer invalidates exactly what
  // its lock covers.
  if (reuse_cache_ != nullptr) reuse_cache_->InvalidateTable(stmt.table_name);
  metrics_.Add("sql.update.statements", 1);
  metrics_.Add("sql.update.rows", matched);
  *rows_affected = matched;
  return Status::OK();
}

Status Database::EnableTransactions(const TxnPlaneOptions& options) {
  if (txn_enabled_) return Status::FailedPrecondition("already enabled");
  txn_options_ = options;
  stable_ = std::make_unique<StableMemory>(options.stable_memory_bytes);
  if (options.fault_injector != nullptr) {
    disk_.set_fault_injector(options.fault_injector);
    stable_->set_fault_injector(options.fault_injector);
  }

  using WalKind = TxnPlaneOptions::WalKind;
  switch (options.wal_kind) {
    case WalKind::kSingleNoGroupCommit:
    case WalKind::kSingle: {
      log_devices_.push_back(std::make_unique<LogDevice>(
          options_.page_size, options.log_write_latency));
      log_devices_[0]->set_fault_injector(options.fault_injector);
      GroupCommitLogOptions gc;
      gc.group_commit = options.wal_kind == WalKind::kSingle;
      wal_ = std::make_unique<GroupCommitLog>(
          std::vector<LogDevice*>{log_devices_[0].get()}, gc);
      break;
    }
    case WalKind::kPartitioned: {
      GroupCommitLogOptions gc;
      gc.group_commit = true;
      auto partitioned = std::make_unique<PartitionedLogManager>(
          options.log_partitions, options_.page_size,
          options.log_write_latency, gc);
      partitioned->set_fault_injector(options.fault_injector);
      wal_ = std::move(partitioned);
      break;
    }
    case WalKind::kStable: {
      log_devices_.push_back(std::make_unique<LogDevice>(
          options_.page_size, options.log_write_latency));
      log_devices_[0]->set_fault_injector(options.fault_injector);
      StableLogOptions so;
      so.compress = options.compress_stable_log;
      wal_ = std::make_unique<StableLogBuffer>(stable_.get(),
                                               log_devices_[0].get(), so);
      break;
    }
  }
  lock_manager_ = std::make_unique<LockManager>();
  store_ = std::make_unique<RecoverableStore>(
      &disk_, options.num_records, options.record_size, options_.page_size);
  fut_ = std::make_unique<FirstUpdateTable>(stable_.get(),
                                            store_->num_pages());
  if (options.enable_versioning) {
    versions_ = std::make_unique<MvccManager>(store_.get());
  }
  txn_manager_ = std::make_unique<TransactionManager>(
      store_.get(), lock_manager_.get(), wal_.get(), fut_.get(),
      /*first_txn_id=*/1, versions_.get());
  // MVCC interaction (DESIGN.md §15): SQL plans never read the record
  // plane, so its commits cannot make a cached SQL result stale — but the
  // reserved namespace documents (and tests) the channel: every committed
  // record-plane transaction bumps one version the way a table write
  // would, after its locks are finalized.
  if (reuse_cache_ != nullptr) {
    txn_manager_->set_commit_hook([this](TxnId) {
      reuse_cache_->InvalidateTable("<txn-records>");
    });
  }
  checkpointer_ = std::make_unique<Checkpointer>(
      store_.get(), fut_.get(), wal_.get(), options.checkpointer_options);
  backup_ = std::make_unique<BackupManager>(store_.get(), wal_.get(),
                                            txn_manager_.get());

  wal_->Start();
  if (options.start_checkpointer) checkpointer_->Start();
  txn_enabled_ = true;
  return Status::OK();
}

Status Database::RestoreFromBackup(
    const std::vector<const BackupImage*>& chain,
    const RestoreOptions& options) {
  if (!txn_enabled_) return Status::FailedPrecondition("transactions off");
  return BackupManager::RestoreChain(chain, store_.get(), fut_.get(),
                                     options);
}

StatusOr<int64_t> Database::CheckpointNow() {
  if (!txn_enabled_) return Status::FailedPrecondition("transactions off");
  MMDB_ASSIGN_OR_RETURN(int64_t pages, checkpointer_->CheckpointOnce());
  metrics_.Add("checkpoint.sweeps", 1);
  return pages;
}

Status Database::Crash() {
  if (!txn_enabled_) return Status::FailedPrecondition("transactions off");
  // A crash can land inside instant recovery's serving window: join the
  // sweep first so no replay write races the memory wipe below. Its
  // in-memory progress is lost with the rest of volatile state — the next
  // Recover() re-enters analysis and rebuilds the index from the log.
  if (recovery_ctl_ != nullptr) recovery_ctl_->Stop();
  checkpointer_->Stop();
  wal_->CrashStop();  // flusher threads die; buffered bytes are LOST
  store_->SimulateCrash();
  return Status::OK();
}

StatusOr<RecoveryStats> Database::Recover(RecoveryOptions options) {
  if (!txn_enabled_) return Status::FailedPrecondition("transactions off");
  // Retire (don't destroy) any previous instant-recovery controller: an
  // access guard call in flight on another thread may still reference it.
  // Stopped controllers are inert; they are freed with the Database.
  if (recovery_ctl_ != nullptr) {
    recovery_ctl_->Stop();
    retired_recovery_ctls_.push_back(std::move(recovery_ctl_));
  }

  RecoveryStats stats;
  InstantRecoveryPlan plan;
  const bool instant = options.mode == RecoveryMode::kInstant;
  if (instant) {
    MMDB_ASSIGN_OR_RETURN(plan, AnalyzeInstantRecovery(store_.get(),
                                                       wal_.get(), fut_.get(),
                                                       options));
    stats = plan.stats;
  } else {
    MMDB_ASSIGN_OR_RETURN(stats, RecoverStore(store_.get(), wal_.get(),
                                              fut_.get(), options));
  }
  metrics_.Add("recovery.runs", 1);
  metrics_.Add("recovery.log_records_scanned", stats.log_records_scanned);
  metrics_.Add("recovery.redo_applied", stats.redo_applied);
  metrics_.Add("recovery.undo_applied", stats.undo_applied);
  metrics_.Add("recovery.snapshot_pages_read", stats.snapshot_pages_read);
  metrics_.Add("recovery.corrupt_records_skipped",
               stats.corrupt_records_skipped);
  // Fresh lock table, version chains, and manager state; restart the
  // background threads. New transaction ids start above everything in the
  // log; version chains are volatile and restart empty.
  lock_manager_ = std::make_unique<LockManager>();
  if (txn_options_.enable_versioning) {
    versions_ = std::make_unique<MvccManager>(store_.get());
  }
  txn_manager_ = std::make_unique<TransactionManager>(
      store_.get(), lock_manager_.get(), wal_.get(), fut_.get(),
      stats.max_txn_id + 1, versions_.get());
  if (reuse_cache_ != nullptr) {
    txn_manager_->set_commit_hook([this](TxnId) {
      reuse_cache_->InvalidateTable("<txn-records>");
    });
  }
  // Keep the SQL-statement commit-id namespace disjoint from the record
  // plane across restarts: seed it past every SQL commit id in the log
  // (max_txn_id above excludes those, so the record plane stays below
  // kSqlStmtTxnBase). Never move the counter backwards — an in-process
  // Crash()/Recover() may have ids beyond what survived in the log.
  const TxnId sql_seed =
      std::max(kSqlStmtTxnBase, stats.max_sql_stmt_txn_id + 1);
  if (next_sql_stmt_txn_.load(std::memory_order_relaxed) < sql_seed) {
    next_sql_stmt_txn_.store(sql_seed, std::memory_order_relaxed);
  }
  wal_->Start();
  if (instant) {
    // Serving starts NOW; the controller restores records behind the
    // guard. The checkpointer stays down until the sweep drains —
    // checkpointing a page with unrestored records would reset its
    // first-update entry while the page image is still stale, losing redo
    // if we crash again before the sweep reaches it.
    recovery_ctl_ = std::make_unique<RecoveryController>(
        store_.get(), fut_.get(), wal_.get(), std::move(plan), options,
        /*on_complete=*/[this] {
          if (txn_options_.start_checkpointer) checkpointer_->Start();
        });
    recovery_ctl_->Start();
  } else if (txn_options_.start_checkpointer) {
    checkpointer_->Start();
  }
  return stats;
}

Status Database::WaitRecoveryDrained() {
  if (!txn_enabled_) return Status::FailedPrecondition("transactions off");
  if (recovery_ctl_ == nullptr) return Status::OK();
  return recovery_ctl_->WaitComplete();
}

}  // namespace mmdb
