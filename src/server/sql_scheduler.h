#ifndef MMDB_SERVER_SQL_SCHEDULER_H_
#define MMDB_SERVER_SQL_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace mmdb {

class Session;

/// Dispatches session statements onto a private worker pool with bounded
/// admission (DESIGN.md §10). A statement is *admitted* (counted against
/// the queue bound from submission until completion) or *rejected* with a
/// distinct status the client can use for backpressure:
///  * kOverloaded    — the scheduler-wide bound or the submitting session's
///                     in-flight cap is full; retry after backing off;
///  * kFailedPrecondition — the scheduler is draining (server shutdown).
///
/// Drain() stops admission and blocks until every admitted statement has
/// finished, which is what lets Server::Shutdown stop the checkpointer and
/// log flusher afterwards without yanking them out from under running
/// statements.
class SqlScheduler {
 public:
  struct Options {
    int num_workers = 4;
    /// Max statements admitted (queued + executing) across all sessions.
    int max_queue_depth = 128;
    /// Max statements admitted per session at once (a client pipelining
    /// deeper than this is rejected, not queued).
    int max_inflight_per_session = 4;
  };

  /// `metrics` receives the server.admission.* counters (may be null).
  SqlScheduler(Options options, MetricsRegistry* metrics);
  ~SqlScheduler();

  SqlScheduler(const SqlScheduler&) = delete;
  SqlScheduler& operator=(const SqlScheduler&) = delete;

  /// Admits and enqueues `work` on behalf of `session` (null for
  /// sessionless work: only the queue bound applies). `work` runs on a
  /// worker thread and returns a *publish* continuation (may be empty),
  /// which the scheduler invokes only after releasing the statement's
  /// admission slots. Fulfil the caller-visible future in the publish
  /// step, not in `work`: a closed-loop client woken by the future then
  /// resubmits against up-to-date counters instead of racing the
  /// decrement and drawing a spurious kOverloaded.
  Status Submit(Session* session,
                std::function<std::function<void()>()> work);

  /// Stops admission (new Submits fail kFailedPrecondition) and waits for
  /// all admitted work to finish. Idempotent.
  void Drain();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Admitted-but-unfinished statement count (tests/bench).
  int64_t admitted_in_flight() const {
    return admitted_.load(std::memory_order_acquire);
  }

  /// Test hook: runs on the worker thread immediately before each admitted
  /// statement executes. Lets tests hold workers to fill the queue
  /// deterministically. Set before submitting; not synchronized against
  /// in-flight work.
  void set_before_execute_hook(std::function<void()> hook) {
    hook_ = std::move(hook);
  }

 private:
  /// Gives one scheduler-wide admission slot back: decrement under mu_,
  /// then wake Drain(). Used by completion and every admission-undo path.
  void ReleaseAdmittedSlot();

  Options options_;
  MetricsRegistry* metrics_;
  std::atomic<bool> draining_{false};
  std::atomic<int64_t> admitted_{0};
  std::mutex mu_;
  std::condition_variable drained_cv_;
  std::function<void()> hook_;
  /// Private pool (not ThreadPool::Shared()): statement latency must not
  /// contend with parallel operator morsels, and drain must be able to
  /// wait for exactly this queue.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace mmdb

#endif  // MMDB_SERVER_SQL_SCHEDULER_H_
