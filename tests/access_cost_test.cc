#include "cost/access_cost.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mmdb {
namespace {

AccessModelParams Defaults() {
  AccessModelParams p;
  p.num_tuples = 1'000'000;
  p.key_width = 8;
  p.tuple_width = 100;
  p.page_size = 4096;
  return p;
}

TEST(AccessCostTest, AvlComparisonsAreLog2NPlusQuarter) {
  AvlAccessCost c = ComputeAvlCost(Defaults(), 0);
  EXPECT_NEAR(c.comparisons, std::log2(1e6) + 0.25, 1e-9);
}

TEST(AccessCostTest, AvlFullyResidentHasNoFaults) {
  AccessModelParams p = Defaults();
  AvlAccessCost zero_mem = ComputeAvlCost(p, 0);
  AvlAccessCost full = ComputeAvlCost(p, int64_t(zero_mem.pages));
  EXPECT_DOUBLE_EQ(full.faults, 0);
  EXPECT_DOUBLE_EQ(full.cost, p.y * full.comparisons);
}

TEST(AccessCostTest, BTreeGeometry) {
  AccessModelParams p = Defaults();
  BTreeAccessCost c = ComputeBTreeCost(p, 0);
  // fanout = 0.69 * 4096 / 12 ~ 235; leaves = 1e6/28.3 ~ 35k; height 2.
  EXPECT_NEAR(c.fanout, 0.69 * 4096 / 12, 1);
  EXPECT_NEAR(c.leaves, 1e6 / (0.69 * 4096 / 100), 100);
  EXPECT_DOUBLE_EQ(c.height, 2);
  // S' slightly above the leaf count.
  EXPECT_GT(c.pages, c.leaves);
  EXPECT_LT(c.pages, c.leaves * 1.01);
  // Zero memory: height+1 faults.
  EXPECT_DOUBLE_EQ(c.faults, 3);
}

TEST(AccessCostTest, BTreeDominatesAtLowMemory) {
  AccessModelParams p = Defaults();
  // At 10% residency the B+-tree must win by a wide margin for any
  // realistic Z.
  for (double z : {10.0, 20.0, 30.0}) {
    p.z = z;
    EXPECT_LT(RandomAccessCostDiff(p, 0.1), 0) << z;
  }
}

TEST(AccessCostTest, AvlWinsWhenFullyResidentWithCheaperComparisons) {
  AccessModelParams p = Defaults();
  p.y = 0.8;
  EXPECT_GT(RandomAccessCostDiff(p, 1.0), 0);
}

TEST(AccessCostTest, BreakEvenHInPapersEightyToNinetyPercentBand) {
  // The headline conclusion: B+-trees remain preferred "unless more than
  // 80%-90% of the database can be kept in main memory".
  AccessModelParams p = Defaults();
  for (double z : {10.0, 20.0, 30.0}) {
    for (double y : {0.5, 0.8}) {
      p.z = z;
      p.y = y;
      const double h = BreakEvenH(p);
      EXPECT_GE(h, 0.75) << "z=" << z << " y=" << y;
      EXPECT_LE(h, 1.0) << "z=" << z << " y=" << y;
    }
  }
}

TEST(AccessCostTest, BreakEvenHGrowsWithZ) {
  // Heavier I/O weighting favours the shallower B+-tree: the AVL needs
  // even more memory to compete.
  AccessModelParams p = Defaults();
  p.z = 10;
  const double h10 = BreakEvenH(p);
  p.z = 30;
  const double h30 = BreakEvenH(p);
  EXPECT_LT(h10, h30);
}

TEST(AccessCostTest, BreakEvenYConsistentWithCostDiff) {
  AccessModelParams p = Defaults();
  for (double h : {0.85, 0.9, 0.95}) {
    const double y_star = BreakEvenY(p, h);
    AccessModelParams q = p;
    q.y = y_star;
    EXPECT_NEAR(RandomAccessCostDiff(q, h), 0, 1e-6) << h;
    // Slightly cheaper comparisons -> AVL preferred; pricier -> B+.
    q.y = y_star - 0.05;
    EXPECT_GT(RandomAccessCostDiff(q, h), 0);
    q.y = y_star + 0.05;
    EXPECT_LT(RandomAccessCostDiff(q, h), 0);
  }
}

TEST(AccessCostTest, Table1ShapeBreakEvenYRisesWithH) {
  AccessModelParams p = Defaults();
  p.z = 20;
  double prev = -100;
  for (double h : {0.8, 0.9, 0.95, 0.99}) {
    const double y = BreakEvenY(p, h);
    EXPECT_GT(y, prev) << h;
    prev = y;
  }
  // At H=0.8 with Z=20 the AVL cannot win even with free comparisons.
  EXPECT_LT(BreakEvenY(p, 0.8), 0);
}

TEST(AccessCostTest, SequentialCaseNeedsSimilarlyHighResidency) {
  // §2 case 2: "It appears that reasonable values for H' are similar to
  // reasonable values for H".
  AccessModelParams p = Defaults();
  const int64_t n = 1000;
  // At low residency the B+-tree's packed leaves crush the AVL.
  SequentialCost low = ComputeSequentialCost(p, 0.3, n);
  EXPECT_LT(low.btree_cost, low.avl_cost);
  // Fully resident with cheaper comparisons the AVL finally wins.
  p.y = 0.8;
  SequentialCost high = ComputeSequentialCost(p, 1.0, n);
  EXPECT_LT(high.avl_cost, high.btree_cost);
  // Break-even Y behaves like Table 1's companion column.
  EXPECT_LT(BreakEvenYSequential(p, 0.5, n),
            BreakEvenYSequential(p, 0.99, n));
}

TEST(AccessCostTest, CostScalesLinearlyWithZAtFixedFaults) {
  AccessModelParams p = Defaults();
  p.z = 10;
  BTreeAccessCost a = ComputeBTreeCost(p, 0);
  p.z = 20;
  BTreeAccessCost b = ComputeBTreeCost(p, 0);
  EXPECT_NEAR(b.cost - b.comparisons, 2 * (a.cost - a.comparisons), 1e-9);
}

}  // namespace
}  // namespace mmdb
