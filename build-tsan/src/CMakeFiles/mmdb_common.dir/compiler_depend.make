# Empty compiler generated dependencies file for mmdb_common.
# This may be replaced when dependencies are built.
