#ifndef MMDB_OPTIMIZER_CATALOG_H_
#define MMDB_OPTIMIZER_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"

namespace mmdb {

/// Per-column statistics gathered at registration time (the inputs to
/// Selinger-style selectivity estimation [SELI79]).
struct ColumnStats {
  int64_t num_distinct = 0;
  Value min_value;
  Value max_value;
  bool has_min_max = false;
};

/// Per-table statistics: the ||R|| and |R| of the cost formulas.
struct TableStats {
  int64_t num_tuples = 0;
  int64_t num_pages = 0;
  std::vector<ColumnStats> columns;
};

/// Kinds of secondary indexes the planner may route point/prefix
/// restrictions through (§2's access methods feeding §4's planning).
enum class IndexKind { kAvl, kBTree, kHash };

struct IndexInfo {
  std::string column;
  IndexKind kind;
};

/// A registered table: the memory-resident relation plus its statistics.
struct TableEntry {
  std::string name;
  const Relation* relation = nullptr;
  TableStats stats;
  std::vector<IndexInfo> indexes;
};

/// Name -> table registry used by the optimizer and plan executor. Tables
/// are borrowed; the caller keeps the Relations alive.
class Catalog {
 public:
  explicit Catalog(int64_t page_size = 4096) : page_size_(page_size) {}

  /// Registers `relation` under `name`, computing full column statistics
  /// (one pass; exact distinct counts — the relations are memory resident).
  Status RegisterTable(const std::string& name, const Relation* relation);

  StatusOr<const TableEntry*> Lookup(const std::string& name) const;

  /// Declares that `table.column` has an index of `kind`. The planner may
  /// then emit IndexScan nodes served by an IndexProvider at execution.
  Status RegisterIndex(const std::string& table, const std::string& column,
                       IndexKind kind);

  /// The index on `table.column`, or nullptr.
  const IndexInfo* FindIndex(const std::string& table,
                             const std::string& column) const;

  /// Index of `column` in `table`'s schema.
  StatusOr<int> ResolveColumn(const std::string& table,
                              const std::string& column) const;

  int64_t page_size() const { return page_size_; }
  std::vector<std::string> TableNames() const;

 private:
  int64_t page_size_;
  std::map<std::string, TableEntry> tables_;
};

}  // namespace mmdb

#endif  // MMDB_OPTIMIZER_CATALOG_H_
