# Empty compiler generated dependencies file for join_cost_test.
# This may be replaced when dependencies are built.
