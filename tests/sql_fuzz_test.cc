// Randomized end-to-end check of the whole query stack: random tables,
// random conjunctive queries, executed three ways —
//   (1) through the optimizer as a Query struct,
//   (2) through the SQL parser as a statement string,
//   (3) by a brute-force cross-product oracle —
// and all three must agree exactly.

#include <gtest/gtest.h>

#include <set>

#include "db/database.h"

namespace mmdb {
namespace {

struct FuzzCase {
  uint64_t seed;
  int queries;
};

class SqlFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

std::multiset<std::string> Canonical(const Relation& rel) {
  std::multiset<std::string> out;
  for (const Row& row : rel.rows()) out.insert(RowToString(row));
  return out;
}

/// Brute-force evaluation of a Query over the database tables.
std::multiset<std::string> Oracle(const Database& db, const Query& q) {
  std::vector<const Relation*> tables;
  for (const std::string& name : q.tables) {
    tables.push_back(*db.GetTable(name));
  }
  // Column resolution: (table ordinal, column index) per ColumnRef.
  auto resolve = [&](const ColumnRef& ref) -> std::pair<int, int> {
    for (size_t t = 0; t < q.tables.size(); ++t) {
      if (q.tables[t] != ref.table) continue;
      auto idx = tables[t]->schema().ColumnIndex(ref.column);
      MMDB_CHECK(idx.ok());
      return {static_cast<int>(t), *idx};
    }
    MMDB_CHECK(false);
    return {-1, -1};
  };

  std::multiset<std::string> out;
  // Cross product via odometer (tables are small in this test).
  std::vector<size_t> cursor(tables.size(), 0);
  while (true) {
    bool keep = true;
    auto value_of = [&](const ColumnRef& ref) -> const Value& {
      auto [t, c] = resolve(ref);
      return tables[size_t(t)]->rows()[cursor[size_t(t)]][size_t(c)];
    };
    for (const JoinClause& jc : q.joins) {
      if (!ValuesEqual(value_of(jc.left), value_of(jc.right))) {
        keep = false;
        break;
      }
    }
    if (keep) {
      for (const Predicate& p : q.filters) {
        Row probe = {value_of(ColumnRef{p.table, p.column})};
        if (!EvalPredicate(p, probe, 0)) {
          keep = false;
          break;
        }
      }
    }
    if (keep) {
      Row projected;
      for (const ColumnRef& ref : q.select_columns) {
        projected.push_back(value_of(ref));
      }
      out.insert(RowToString(projected));
    }
    // Advance the odometer.
    size_t t = 0;
    for (; t < tables.size(); ++t) {
      if (++cursor[t] < size_t(tables[t]->num_tuples())) break;
      cursor[t] = 0;
    }
    if (t == tables.size()) break;
  }
  return out;
}

std::string LiteralToSql(const Value& v) {
  if (std::holds_alternative<std::string>(v)) {
    return "'" + std::get<std::string>(v) + "'";
  }
  return ValueToString(v);
}

/// Renders the Query back to its SQL text.
std::string ToSql(const Query& q) {
  std::string sql = "SELECT ";
  for (size_t i = 0; i < q.select_columns.size(); ++i) {
    if (i) sql += ", ";
    sql += q.select_columns[i].ToString();
  }
  sql += " FROM ";
  for (size_t i = 0; i < q.tables.size(); ++i) {
    if (i) sql += ", ";
    sql += q.tables[i];
  }
  std::vector<std::string> conjuncts;
  for (const JoinClause& jc : q.joins) {
    conjuncts.push_back(jc.left.ToString() + " = " + jc.right.ToString());
  }
  for (const Predicate& p : q.filters) {
    if (p.op == CmpOp::kPrefix) {
      conjuncts.push_back(p.table + "." + p.column + " LIKE '" +
                          std::get<std::string>(p.literal) + "%'");
    } else {
      conjuncts.push_back(p.table + "." + p.column + " " +
                          std::string(CmpOpName(p.op)) + " " +
                          LiteralToSql(p.literal));
    }
  }
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    sql += i == 0 ? " WHERE " : " AND ";
    sql += conjuncts[i];
  }
  return sql;
}

TEST_P(SqlFuzzTest, EngineParserAndOracleAgree) {
  const FuzzCase param = GetParam();
  Random rng(param.seed);

  // --- Random schema + data: three small tables sharing an int domain.
  Database::Options dbopts;
  dbopts.memory_pages = 8;  // force spilling joins now and then
  Database db(dbopts);
  const char* names[] = {"t0", "t1", "t2"};
  const char* stems[] = {"ada", "bob", "cyd", "dee", "eve"};
  std::vector<Schema> schemas;
  for (int t = 0; t < 3; ++t) {
    std::vector<Column> cols = {Column::Int64("k")};
    cols.push_back(Column::Int64("n" + std::to_string(t)));
    cols.push_back(Column::Double("d" + std::to_string(t)));
    cols.push_back(Column::Char("s" + std::to_string(t), 8));
    Schema schema(std::move(cols));
    ASSERT_TRUE(db.CreateTable(names[t], schema).ok());
    const int64_t rows = 20 + int64_t(rng.Uniform(60));
    for (int64_t i = 0; i < rows; ++i) {
      ASSERT_TRUE(db.Insert(names[t],
                            {static_cast<int64_t>(rng.Uniform(12)),
                             static_cast<int64_t>(rng.Uniform(30)),
                             double(rng.Uniform(100)) / 4.0,
                             std::string(stems[rng.Uniform(5)])})
                      .ok());
    }
    schemas.push_back(schema);
  }
  // Indexes so the planner's IndexScan path is fuzzed too.
  ASSERT_TRUE(db.CreateIndex("t0", "k", Database::IndexType::kHash).ok());
  ASSERT_TRUE(db.CreateIndex("t1", "n1", Database::IndexType::kBTree).ok());
  ASSERT_TRUE(db.CreateIndex("t2", "s2", Database::IndexType::kAvl).ok());

  for (int iteration = 0; iteration < param.queries; ++iteration) {
    // --- Random query over 1-3 tables.
    Query q;
    const int num_tables = 1 + int(rng.Uniform(3));
    for (int t = 0; t < num_tables; ++t) q.tables.push_back(names[t]);
    // Chain joins on k so the graph is connected.
    for (int t = 1; t < num_tables; ++t) {
      q.joins.push_back(JoinClause{ColumnRef{names[t - 1], "k"},
                                   ColumnRef{names[t], "k"}});
    }
    // 0-2 random filters.
    const int num_filters = int(rng.Uniform(3));
    for (int f = 0; f < num_filters; ++f) {
      const int t = int(rng.Uniform(uint64_t(num_tables)));
      const int c = int(rng.Uniform(4));
      const Column& col = schemas[size_t(t)].column(c);
      Predicate p;
      p.table = names[t];
      p.column = col.name;
      switch (col.type) {
        case ValueType::kInt64:
          p.op = static_cast<CmpOp>(rng.Uniform(6));  // kEq..kGe
          p.literal = Value{static_cast<int64_t>(rng.Uniform(30))};
          break;
        case ValueType::kDouble:
          p.op = rng.Bernoulli(0.5) ? CmpOp::kLt : CmpOp::kGe;
          p.literal = Value{double(rng.Uniform(100)) / 4.0};
          break;
        case ValueType::kString:
          if (rng.Bernoulli(0.5)) {
            p.op = CmpOp::kEq;
            p.literal = Value{std::string(stems[rng.Uniform(5)])};
          } else {
            p.op = CmpOp::kPrefix;
            p.literal = Value{std::string(1, "abcde"[rng.Uniform(5)])};
          }
          break;
      }
      q.filters.push_back(std::move(p));
    }
    // 1-3 random select columns.
    const int num_select = 1 + int(rng.Uniform(3));
    for (int sidx = 0; sidx < num_select; ++sidx) {
      const int t = int(rng.Uniform(uint64_t(num_tables)));
      const int c = int(rng.Uniform(4));
      q.select_columns.push_back(
          ColumnRef{names[t], schemas[size_t(t)].column(c).name});
    }

    const std::multiset<std::string> expected = Oracle(db, q);

    auto engine = db.Execute(q);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_EQ(Canonical(engine->relation), expected)
        << "query " << iteration << ":\n" << ToSql(q) << "\nplan:\n"
        << engine->plan_text;

    auto via_sql = db.ExecuteSql(ToSql(q));
    ASSERT_TRUE(via_sql.ok()) << ToSql(q) << " -> "
                              << via_sql.status().ToString();
    EXPECT_EQ(Canonical(via_sql->relation), expected)
        << "sql: " << ToSql(q);
  }
}

TEST(SqlCrashCorpusTest, AdversarialStatementsNeverCrash) {
  // Historical crashers plus fuzz-style garbage. Every statement must come
  // back as a Status (ok or error) — never an uncaught exception or abort.
  const char* corpus[] = {
      // std::stoll used to throw std::out_of_range on these.
      "SELECT k FROM t WHERE k = 99999999999999999999",
      "SELECT k FROM t WHERE k = -99999999999999999999",
      "INSERT INTO t VALUES (123456789012345678901234567890)",
      // std::stod overflow.
      "SELECT k FROM t WHERE d = "
      "999999999999999999999999999999999999999999999999999999999999999999999"
      "999999999999999999999999999999999999999999999999999999999999999999999"
      "999999999999999999999999999999999999999999999999999999999999999999999"
      "999999999999999999999999999999999999999999999999999999999999999999999"
      "999999999999999999999999999999999999999999999999999999.0",
      // Multi-dot and trailing-dot literals.
      "SELECT k FROM t WHERE d = 1.2.3",
      "SELECT k FROM t WHERE d = 1.2.3.4.5",
      "SELECT k FROM t WHERE d = .",
      "SELECT k FROM t WHERE d = 1.",
      "INSERT INTO t VALUES (1..2)",
      // General malformed shapes around literals and punctuation.
      "SELECT",
      "SELECT * FROM",
      "SELECT * FROM t WHERE",
      "SELECT * FROM t WHERE k =",
      "SELECT * FROM t WHERE k = 'unterminated",
      "SELECT * FROM t WHERE k = ''''",
      "EXPLAIN",
      "EXPLAIN ANALYZE",
      "EXPLAIN EXPLAIN SELECT * FROM t",
      "EXPLAIN ANALYZE ANALYZE SELECT * FROM t",
      "CREATE TABLE (",
      "INSERT INTO t VALUES (,)",
      "SELECT * FROM t GROUP BY",
      ")(*&^%$#@!",
      "",
      "   ",
      ";;;",
  };
  Database db;
  ASSERT_TRUE(
      db.CreateTable("t", Schema({Column::Int64("k"), Column::Double("d")}))
          .ok());
  ASSERT_TRUE(db.Insert("t", {int64_t{1}, 2.5}).ok());
  for (const char* sql : corpus) {
    auto result = db.ExecuteSql(sql);  // must not crash
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty()) << sql;
    }
  }
  // The engine is still healthy afterwards.
  auto ok = db.ExecuteSql("SELECT k FROM t WHERE d = 2.5");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->relation.num_tuples(), 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlFuzzTest,
                         ::testing::Values(FuzzCase{1, 30}, FuzzCase{2, 30},
                                           FuzzCase{3, 30}, FuzzCase{4, 30},
                                           FuzzCase{20260708, 60}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace mmdb
