// Vectorized vs tuple-at-a-time execution (EXPERIMENTS.md §S9).
//
// The §3 operators charge a simulated cost clock; DESIGN.md §14's batch
// kernels charge the SAME totals and produce the SAME bytes — what they
// change is real time. This bench measures that claim and machine-checks
// it:
//  * scan -> filter -> hash-aggregate: the vector pipeline must be at
//    least 2x faster than the Volcano pipeline (1.2x under --smoke, where
//    the inputs are small enough for noise to matter) with byte-identical
//    results and identical cost-clock counters;
//  * the copy-free NextRef pull path must allocate strictly less than the
//    copying Next path on the same scan->filter->project drain;
//  * VectorHashJoin must match the tuple hybrid join byte-for-byte;
//    the cache-partitioned RadixHashJoin and CacheConsciousSort must match
//    their oracles;
//  * a vectorized plan run with wall-clock collection on must publish
//    exec.join.wall_ns / exec.agg.wall_ns / exec.filter.wall_ns.
//
// Usage: bench_vector_exec [--smoke] [--json=PATH]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <string>
#include <vector>

#include "common/check.h"
#include "exec/batch.h"
#include "exec/operator.h"
#include "optimizer/executor.h"
#include "optimizer/optimizer.h"
#include "storage/datagen.h"

// ---- Global allocation counter (satellite: Row copy churn). -----------
// Counts every operator new; the NextRef-vs-Next comparison reads deltas.
// GCC assumes the replaced operator new pairs with the replaced delete and
// warns about the malloc/free mix inside them; the pairing here is correct.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mmdb {
namespace {

struct BenchConfig {
  bool smoke = false;
  int repeats = 3;  // best-of to tame scheduler noise
  int64_t pipeline_tuples = 1'000'000;
  int64_t join_build = 50'000;
  int64_t join_probe = 150'000;
  int64_t sort_tuples = 400'000;
  double required_speedup = 2.0;
};
BenchConfig cfg;

struct JsonEntry {
  std::string key;
  std::string value;  // already-rendered JSON
};
std::vector<JsonEntry> json_entries;

void JsonNum(const std::string& key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  json_entries.push_back({key, buf});
}
void JsonInt(const std::string& key, int64_t v) {
  json_entries.push_back({key, std::to_string(v)});
}

double WallSeconds(const std::function<void()>& fn) {
  double best = 1e300;
  for (int rep = 0; rep < cfg.repeats; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - start;
    if (dt.count() < best) best = dt.count();
  }
  return best;
}

std::string RowBytes(const Relation& rel) {
  std::string out;
  for (const Row& row : rel.rows()) {
    out += RowToString(row);
    out += '\n';
  }
  return out;
}

// ---- scan -> filter -> hash-aggregate, tuple vs vector. ----------------

void PipelineSection() {
  GenOptions opts;
  opts.num_tuples = cfg.pipeline_tuples;
  opts.tuple_width = 64;
  opts.distribution = KeyDistribution::kUniform;
  opts.key_range = 1'000;
  opts.seed = 7;
  const Relation rel = MakeKeyedRelation(opts);
  const Schema& schema = rel.schema();

  Predicate pred;
  pred.table = "t";
  pred.column = "payload";
  pred.op = CmpOp::kLt;
  pred.literal = Value{cfg.pipeline_tuples / 2};
  const int pred_idx = 1;  // payload

  AggregateSpec agg;
  agg.group_by = {0};
  agg.aggregates = {{AggFn::kCount, 0, "cnt"},
                    {AggFn::kSum, 1, "sum_p"},
                    {AggFn::kMax, 1, "max_p"}};

  std::string tuple_bytes, vector_bytes;
  CostCounters tuple_counters, vector_counters;

  const double tuple_wall = WallSeconds([&] {
    ExecEnv env(1 << 20);
    MemScan* scan = new MemScan(&rel);
    Filter filter(std::unique_ptr<Operator>(scan),
                  [&](const Row& row) {
                    return EvalPredicate(pred, row, pred_idx);
                  },
                  &env.clock);
    auto filtered = Materialize(&filter);
    MMDB_CHECK(filtered.ok());
    auto out = HashAggregate(*filtered, agg, &env.ctx);
    MMDB_CHECK(out.ok());
    tuple_bytes = RowBytes(*out);
    tuple_counters = env.clock.counters();
  });

  const double vector_wall = WallSeconds([&] {
    ExecEnv env(1 << 20);
    // Scan+project fusion: the pipeline reads only (key, payload), so the
    // cold pad column is never transposed out of row storage.
    BatchFilter filter(
        std::make_unique<BatchMemScan>(&rel, 0, -1, std::vector<int>{0, 1}),
        {pred}, {pred_idx}, &env.clock);
    auto out = BatchHashAggregate(&filter, agg, &env.ctx);
    MMDB_CHECK(out.ok());
    vector_bytes = RowBytes(*out);
    vector_counters = env.clock.counters();
  });

  const double speedup = tuple_wall / vector_wall;
  std::printf("== scan -> filter(payload<%lld) -> agg, %lld tuples ==\n",
              static_cast<long long>(cfg.pipeline_tuples / 2),
              static_cast<long long>(cfg.pipeline_tuples));
  std::printf("%-8s %12s\n", "path", "wall s");
  std::printf("%-8s %12.4f\n", "tuple", tuple_wall);
  std::printf("%-8s %12.4f   (speedup %.2fx, required >= %.2fx)\n\n",
              "vector", vector_wall, speedup, cfg.required_speedup);

  MMDB_CHECK_MSG(vector_bytes == tuple_bytes,
                 "vector pipeline result bytes differ from tuple pipeline");
  MMDB_CHECK_MSG(vector_counters == tuple_counters,
                 "vector pipeline cost-clock totals differ from tuple "
                 "pipeline");
  MMDB_CHECK_MSG(speedup >= cfg.required_speedup,
                 "vector pipeline failed the wall-clock speedup bar");
  (void)schema;
  JsonNum("pipeline.tuple_wall_s", tuple_wall);
  JsonNum("pipeline.vector_wall_s", vector_wall);
  JsonNum("pipeline.speedup", speedup);
  JsonNum("pipeline.required_speedup", cfg.required_speedup);
}

// ---- Row copy churn: Next (copying) vs NextRef (borrowing). -----------

void AllocSection() {
  GenOptions opts;
  opts.num_tuples = std::min<int64_t>(cfg.pipeline_tuples, 200'000);
  opts.tuple_width = 64;
  opts.distribution = KeyDistribution::kUniform;
  opts.key_range = 1'000;
  opts.seed = 9;
  const Relation rel = MakeKeyedRelation(opts);

  const auto make_pipeline = [&](ExecEnv* env) {
    auto scan = std::make_unique<MemScan>(&rel);
    auto filter = std::make_unique<Filter>(
        std::move(scan),
        [](const Row& row) { return std::get<int64_t>(row[1]) % 4 != 0; },
        &env->clock);
    return std::make_unique<Project>(std::move(filter),
                                     std::vector<int>{0, 1});
  };

  int64_t rows_copy = 0, rows_ref = 0;
  ExecEnv env_copy(1 << 20);
  auto copy_pipe = make_pipeline(&env_copy);
  MMDB_CHECK(copy_pipe->Open().ok());
  const uint64_t allocs_before_copy = g_allocs.load();
  {
    Row row;
    while (true) {
      auto more = copy_pipe->Next(&row);
      MMDB_CHECK(more.ok());
      if (!*more) break;
      ++rows_copy;
    }
  }
  const uint64_t copy_allocs = g_allocs.load() - allocs_before_copy;
  copy_pipe->Close();

  ExecEnv env_ref(1 << 20);
  auto ref_pipe = make_pipeline(&env_ref);
  MMDB_CHECK(ref_pipe->Open().ok());
  const uint64_t allocs_before_ref = g_allocs.load();
  {
    Row scratch;
    while (true) {
      auto row = ref_pipe->NextRef(&scratch);
      MMDB_CHECK(row.ok());
      if (*row == nullptr) break;
      ++rows_ref;
    }
  }
  const uint64_t ref_allocs = g_allocs.load() - allocs_before_ref;
  ref_pipe->Close();

  std::printf("== Row copy churn, scan -> filter -> project drain of %lld "
              "tuples ==\n",
              static_cast<long long>(opts.num_tuples));
  std::printf("%-10s %14s %10s\n", "pull path", "allocations", "rows");
  std::printf("%-10s %14llu %10lld\n", "Next",
              static_cast<unsigned long long>(copy_allocs),
              static_cast<long long>(rows_copy));
  std::printf("%-10s %14llu %10lld\n\n", "NextRef",
              static_cast<unsigned long long>(ref_allocs),
              static_cast<long long>(rows_ref));
  MMDB_CHECK_MSG(rows_copy == rows_ref, "pull paths disagree on row count");
  MMDB_CHECK_MSG(ref_allocs < copy_allocs,
                 "NextRef drain must allocate strictly less than the "
                 "copying Next drain");
  JsonInt("alloc.next_allocs", static_cast<int64_t>(copy_allocs));
  JsonInt("alloc.nextref_allocs", static_cast<int64_t>(ref_allocs));
  JsonInt("alloc.rows", rows_copy);
}

// ---- Joins: vector probe parity + cache-partitioned radix. ------------

void JoinSection() {
  GenOptions r_opts;
  r_opts.num_tuples = cfg.join_build;
  r_opts.tuple_width = 64;
  r_opts.seed = 11;
  GenOptions s_opts;
  s_opts.num_tuples = cfg.join_probe;
  s_opts.tuple_width = 48;
  s_opts.distribution = KeyDistribution::kUniform;
  s_opts.key_range = cfg.join_build;
  s_opts.seed = 13;
  const Relation r = MakeKeyedRelation(r_opts);
  const Relation s = MakeKeyedRelation(s_opts);
  const JoinSpec spec{0, 0};

  std::string tuple_bytes, vector_bytes;
  CostCounters tuple_counters, vector_counters;
  const double tuple_wall = WallSeconds([&] {
    ExecEnv env(1 << 20);
    auto out = ExecuteJoin(JoinAlgorithm::kHybridHash, r, s, spec, &env.ctx);
    MMDB_CHECK(out.ok());
    tuple_bytes = RowBytes(*out);
    tuple_counters = env.clock.counters();
  });
  const double vector_wall = WallSeconds([&] {
    ExecEnv env(1 << 20);
    auto out = VectorHashJoin(r, s, spec, &env.ctx);
    MMDB_CHECK(out.ok());
    vector_bytes = RowBytes(*out);
    vector_counters = env.clock.counters();
  });
  JoinRunStats radix_stats;
  const double radix_wall = WallSeconds([&] {
    ExecEnv env(1 << 20);
    auto out = RadixHashJoin(r, s, spec, &env.ctx, &radix_stats);
    MMDB_CHECK(out.ok());
    // Partition-major emission: same multiset, different order.
    std::string bytes = RowBytes(*out);
    MMDB_CHECK(bytes.size() == vector_bytes.size());
  });

  std::printf("== in-memory hash join, %lld x %lld ==\n",
              static_cast<long long>(cfg.join_build),
              static_cast<long long>(cfg.join_probe));
  std::printf("%-14s %12s\n", "algorithm", "wall s");
  std::printf("%-14s %12.4f\n", "tuple hybrid", tuple_wall);
  std::printf("%-14s %12.4f\n", "vector probe", vector_wall);
  std::printf("%-14s %12.4f   (%lld cache partitions)\n\n", "radix",
              radix_wall, static_cast<long long>(radix_stats.partitions));
  MMDB_CHECK_MSG(vector_bytes == tuple_bytes,
                 "vector join bytes differ from the tuple hybrid");
  MMDB_CHECK_MSG(vector_counters == tuple_counters,
                 "vector join charges differ from the tuple hybrid");
  JsonNum("join.tuple_wall_s", tuple_wall);
  JsonNum("join.vector_wall_s", vector_wall);
  JsonNum("join.radix_wall_s", radix_wall);
  JsonInt("join.radix_partitions", radix_stats.partitions);
}

// ---- Cache-conscious sort. --------------------------------------------

void SortSection() {
  GenOptions opts;
  opts.num_tuples = cfg.sort_tuples;
  opts.tuple_width = 48;
  opts.distribution = KeyDistribution::kUniform;
  opts.key_range = cfg.sort_tuples / 4;
  opts.seed = 17;
  const Relation input = MakeKeyedRelation(opts);

  Relation expected;
  const double std_wall = WallSeconds([&] {
    Relation copy = input;
    copy.SortBy(0);
    expected = std::move(copy);
  });
  std::string cc_bytes;
  const double cc_wall = WallSeconds([&] {
    ExecEnv env(1 << 20);
    auto out = CacheConsciousSort(input, 0, &env.ctx);
    MMDB_CHECK(out.ok());
    cc_bytes = RowBytes(*out);
  });
  std::printf("== sort of %lld tuples ==\n",
              static_cast<long long>(cfg.sort_tuples));
  std::printf("%-16s %12s\n", "algorithm", "wall s");
  std::printf("%-16s %12.4f\n", "stable_sort", std_wall);
  std::printf("%-16s %12.4f\n\n", "cache-partition", cc_wall);
  MMDB_CHECK_MSG(cc_bytes == RowBytes(expected),
                 "cache-conscious sort differs from stable_sort");
  JsonNum("sort.stable_wall_s", std_wall);
  JsonNum("sort.cache_wall_s", cc_wall);
}

// ---- exec.*.wall_ns via a vectorized plan run. ------------------------

std::string WallMetricsSection() {
  GenOptions r_opts;
  r_opts.num_tuples = std::min<int64_t>(cfg.join_build, 20'000);
  r_opts.tuple_width = 64;
  r_opts.seed = 19;
  const Relation r = MakeKeyedRelation(r_opts);
  GenOptions s_opts;
  s_opts.num_tuples = 3 * r_opts.num_tuples;
  s_opts.tuple_width = 48;
  s_opts.distribution = KeyDistribution::kUniform;
  s_opts.key_range = r_opts.num_tuples;
  s_opts.seed = 23;
  const Relation s = MakeKeyedRelation(s_opts);

  Catalog catalog;
  MMDB_CHECK(catalog.RegisterTable("r", &r).ok());
  MMDB_CHECK(catalog.RegisterTable("s", &s).ok());
  Query query;
  query.tables = {"r", "s"};
  query.joins = {{{"r", "key"}, {"s", "key"}}};
  query.filters = {{"s", "payload", CmpOp::kGt, Value{int64_t{0}}}};

  OptimizerOptions opts;
  opts.hash_only = true;
  opts.vectorize = true;
  ExecEnv env(1 << 20);
  env.ctx.collect_wall_ns = true;
  auto result = RunQuery(query, catalog, opts, &env.ctx);
  MMDB_CHECK(result.ok());
  MMDB_CHECK_MSG(result->plan_text.find("vector=on") != std::string::npos,
                 "vectorized plan not stamped vector=on");
  const int64_t join_ns = env.metrics.Get("exec.join.wall_ns");
  const int64_t filter_ns = env.metrics.Get("exec.filter.wall_ns");
  // Aggregate on top, vector path, wall collection on.
  AggregateSpec agg;
  agg.group_by = {0};
  agg.aggregates = {{AggFn::kCount, 0, "cnt"}};
  BatchMemScan scan(&result->relation);
  auto aggregated = BatchHashAggregate(&scan, agg, &env.ctx);
  MMDB_CHECK(aggregated.ok());
  const int64_t agg_ns = env.metrics.Get("exec.agg.wall_ns");

  std::printf("== exec.*.wall_ns (vectorized plan, wall collection on) ==\n");
  std::printf("exec.filter.wall_ns = %lld\n",
              static_cast<long long>(filter_ns));
  std::printf("exec.join.wall_ns   = %lld\n", static_cast<long long>(join_ns));
  std::printf("exec.agg.wall_ns    = %lld\n\n",
              static_cast<long long>(agg_ns));
  MMDB_CHECK_MSG(join_ns > 0, "exec.join.wall_ns not published");
  MMDB_CHECK_MSG(filter_ns > 0, "exec.filter.wall_ns not published");
  MMDB_CHECK_MSG(agg_ns > 0, "exec.agg.wall_ns not published");
  JsonInt("wall_ns.join", join_ns);
  JsonInt("wall_ns.filter", filter_ns);
  JsonInt("wall_ns.agg", agg_ns);
  return env.metrics.ToJson();
}

void WriteJson(const std::string& path, const std::string& metrics_json) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"vector_exec\",\n  \"smoke\": %s,\n",
               cfg.smoke ? "true" : "false");
  for (const JsonEntry& e : json_entries) {
    std::fprintf(f, "  \"%s\": %s,\n", e.key.c_str(), e.value.c_str());
  }
  std::fprintf(f, "  \"metrics\": %s\n}\n", metrics_json.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace mmdb

int main(int argc, char** argv) {
  using namespace mmdb;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
      cfg.repeats = 2;
      cfg.pipeline_tuples = 200'000;
      cfg.join_build = 10'000;
      cfg.join_probe = 30'000;
      cfg.sort_tuples = 80'000;
      // Small inputs are noisier; the regression guard still requires the
      // vector path to be strictly faster with margin.
      cfg.required_speedup = 1.2;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  PipelineSection();
  AllocSection();
  JoinSection();
  SortSection();
  const std::string metrics_json = WallMetricsSection();
  if (!json_path.empty()) WriteJson(json_path, metrics_json);
  std::printf("all vector-exec machine checks passed.\n");
  return 0;
}
