#ifndef MMDB_TXN_INSTANT_RECOVERY_H_
#define MMDB_TXN_INSTANT_RECOVERY_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>

#include "common/status.h"
#include "common/thread_pool.h"
#include "txn/recovery.h"

namespace mmdb {

/// Drives instant recovery's serving-while-sweeping window (DESIGN.md §12).
/// Constructed with the analysis phase's log index, it installs itself as
/// the store's RecordAccessGuard so any access to a not-yet-restored record
/// replays that record's chain on demand (bounded by the replay budget —
/// over budget the access is refused with kRecovering and no side effects),
/// while a background sweep thread restores the remaining records in log
/// order. When the index drains the controller checkpoints the recovered
/// image (dirty + quarantined pages), detaches the guard, and fires
/// `on_complete` — at which point the database is in exactly the state
/// blocking recovery would have produced.
///
/// Crash safety: the sweep never touches the first-update table and its
/// replay writes carry no LSN, so a crash anywhere inside the window leaves
/// snapshot + log + table exactly as the first analysis found them — the
/// next restart re-enters analysis and rebuilds the same index (new traffic
/// adds ordinary logged updates on top, which analysis handles like any
/// other committed work).
class RecoveryController : public RecordAccessGuard {
 public:
  /// `on_complete` runs on the sweep thread after the final checkpoint —
  /// the Database uses it to start the (deliberately deferred) background
  /// checkpointer. May be empty.
  RecoveryController(RecoverableStore* store, FirstUpdateTable* fut, Wal* wal,
                     InstantRecoveryPlan plan, RecoveryOptions options,
                     std::function<void()> on_complete = {});
  ~RecoveryController() override;

  RecoveryController(const RecoveryController&) = delete;
  RecoveryController& operator=(const RecoveryController&) = delete;

  /// Installs the access guard and launches the background sweep. Call
  /// once, after the owning Database has its WAL running (foreground
  /// traffic may arrive the moment this returns).
  void Start();

  /// Detaches the guard and joins the sweep without finishing it (used by
  /// Crash()). Safe to call repeatedly; a completed sweep is a no-op.
  void Stop();

  /// Blocks until the sweep has drained the index and the final checkpoint
  /// is durable (or the controller was stopped). OK when recovery
  /// completed; FailedPrecondition when it was stopped early.
  Status WaitComplete();

  /// True once every record is restored and the final checkpoint is done.
  bool complete() const { return complete_.load(std::memory_order_acquire); }

  /// Records still awaiting replay.
  int64_t remaining() const {
    return remaining_.load(std::memory_order_acquire);
  }

  /// Analysis stats plus live on-demand/sweep counters and phase timings.
  RecoveryStats stats() const;

  /// RecordAccessGuard: restore `record_id` before the access proceeds.
  Status OnAccess(int64_t record_id) override;

 private:
  static constexpr int kShards = 64;

  /// Replays `record_id`'s chain if it is still pending. Foreground
  /// (`from_sweep` false) enforces the replay budget; the sweep never
  /// gives up.
  Status EnsureRecovered(int64_t record_id, bool from_sweep);
  void SweepLoop();
  /// Final checkpoint + guard detach once the index is drained.
  Status FinishSweep();

  RecoverableStore* store_;
  FirstUpdateTable* fut_;
  Wal* wal_;
  InstantRecoveryPlan plan_;
  RecoveryOptions options_;
  std::function<void()> on_complete_;

  /// restored_[id]: true once the record needs no replay. Records absent
  /// from the index start true (the snapshot already held their state).
  std::unique_ptr<std::atomic<bool>[]> restored_;
  /// Serialises replay per record (hashed); pending_ itself is structurally
  /// immutable after analysis, so concurrent find() + mutation of DISTINCT
  /// chains is safe.
  std::mutex shards_[kShards];

  std::atomic<int64_t> remaining_{0};
  std::atomic<bool> complete_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> sweep_done_{false};

  std::atomic<int64_t> ondemand_records_{0};
  std::atomic<int64_t> ondemand_replayed_{0};
  std::atomic<int64_t> ondemand_budget_exceeded_{0};
  std::atomic<int64_t> ondemand_micros_{0};
  std::atomic<int64_t> sweep_records_{0};
  std::atomic<int64_t> sweep_replayed_{0};
  std::atomic<int64_t> sweep_micros_{0};

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  Status sweep_status_;  ///< guarded by wait_mu_

  /// One worker, started last so every member it touches is initialised.
  std::unique_ptr<ThreadPool> pool_;
  std::future<void> sweep_future_;
};

}  // namespace mmdb

#endif  // MMDB_TXN_INSTANT_RECOVERY_H_
