#include "server/sql_scheduler.h"

#include <utility>

#include "server/session.h"

namespace mmdb {

SqlScheduler::SqlScheduler(Options options, MetricsRegistry* metrics)
    : options_(options),
      metrics_(metrics),
      pool_(std::make_unique<ThreadPool>(options.num_workers)) {}

SqlScheduler::~SqlScheduler() { Drain(); }

void SqlScheduler::ReleaseAdmittedSlot() {
  // Decrement under mu_ and notify afterwards, on every path that gives a
  // slot back (completion AND admission undo): a bare fetch_sub could
  // bring the count to 0 after Drain() checked it but before it slept,
  // and Drain would then wait forever.
  {
    std::lock_guard<std::mutex> lock(mu_);
    admitted_.fetch_sub(1, std::memory_order_acq_rel);
  }
  drained_cv_.notify_all();
}

Status SqlScheduler::Submit(Session* session,
                            std::function<std::function<void()>()> work) {
  if (draining()) {
    if (metrics_ != nullptr) metrics_->Add("server.admission.rejected_drain", 1);
    return Status::FailedPrecondition("scheduler draining");
  }
  // Reserve the scheduler slot first, then the session slot; undo on any
  // rejection. Re-check draining after reserving so Drain cannot miss a
  // concurrently admitted statement.
  if (admitted_.fetch_add(1, std::memory_order_acq_rel) >=
      options_.max_queue_depth) {
    ReleaseAdmittedSlot();
    if (metrics_ != nullptr) {
      metrics_->Add("server.admission.rejected_queue_full", 1);
    }
    return Status::Overloaded("statement queue full");
  }
  if (session != nullptr) {
    Status slot =
        session->ReserveInflightSlot(options_.max_inflight_per_session);
    if (!slot.ok()) {
      ReleaseAdmittedSlot();
      if (metrics_ != nullptr) {
        metrics_->Add(slot.code() == StatusCode::kOverloaded
                          ? "server.admission.rejected_session_cap"
                          : "server.admission.rejected_session_closed",
                      1);
      }
      return slot;
    }
  }
  if (draining()) {
    if (session != nullptr) session->ReleaseInflightSlot();
    ReleaseAdmittedSlot();
    if (metrics_ != nullptr) metrics_->Add("server.admission.rejected_drain", 1);
    return Status::FailedPrecondition("scheduler draining");
  }
  if (metrics_ != nullptr) metrics_->Add("server.admission.admitted", 1);
  pool_->Submit([this, session, work = std::move(work)]() {
    if (hook_) hook_();
    std::function<void()> publish = work();
    // Release the slots BEFORE publishing the result: the publish step is
    // what wakes a blocked client, and that client may resubmit
    // immediately. The session slot goes first — after it is released the
    // session pointer must not be touched again (CloseSession may be
    // waiting to destroy it).
    if (session != nullptr) session->ReleaseInflightSlot();
    ReleaseAdmittedSlot();
    if (publish) publish();
  });
  return Status::OK();
}

void SqlScheduler::Drain() {
  draining_.store(true, std::memory_order_release);
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] {
    return admitted_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace mmdb
