#include "storage/datagen.h"

#include <gtest/gtest.h>

#include <set>

namespace mmdb {
namespace {

TEST(DatagenTest, UniqueShuffledKeysArePermutation) {
  GenOptions opts;
  opts.num_tuples = 1000;
  Relation rel = MakeKeyedRelation(opts);
  ASSERT_EQ(rel.num_tuples(), 1000);
  std::set<int64_t> keys;
  for (const Row& row : rel.rows()) {
    keys.insert(std::get<int64_t>(row[0]));
  }
  EXPECT_EQ(keys.size(), 1000u);
  EXPECT_EQ(*keys.begin(), 0);
  EXPECT_EQ(*keys.rbegin(), 999);
}

TEST(DatagenTest, PayloadIsSourceIndex) {
  GenOptions opts;
  opts.num_tuples = 100;
  Relation rel = MakeKeyedRelation(opts);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(std::get<int64_t>(rel.rows()[size_t(i)][1]), i);
  }
}

TEST(DatagenTest, TupleWidthHonored) {
  GenOptions opts;
  opts.num_tuples = 10;
  opts.tuple_width = 100;
  Relation rel = MakeKeyedRelation(opts);
  EXPECT_EQ(rel.schema().record_size(), 100);
  opts.tuple_width = 16;  // minimum: no pad column
  Relation slim = MakeKeyedRelation(opts);
  EXPECT_EQ(slim.schema().record_size(), 16);
  EXPECT_EQ(slim.schema().num_columns(), 2);
}

TEST(DatagenTest, UniformKeysInRange) {
  GenOptions opts;
  opts.num_tuples = 5000;
  opts.distribution = KeyDistribution::kUniform;
  opts.key_range = 100;
  Relation rel = MakeKeyedRelation(opts);
  for (const Row& row : rel.rows()) {
    int64_t k = std::get<int64_t>(row[0]);
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 100);
  }
}

TEST(DatagenTest, ZipfSkewsKeys) {
  GenOptions opts;
  opts.num_tuples = 20000;
  opts.distribution = KeyDistribution::kZipf;
  opts.key_range = 1000;
  opts.zipf_theta = 0.9;
  Relation rel = MakeKeyedRelation(opts);
  int64_t head = 0;
  for (const Row& row : rel.rows()) {
    if (std::get<int64_t>(row[0]) < 10) ++head;
  }
  EXPECT_GT(head, rel.num_tuples() / 10);
}

TEST(DatagenTest, DeterministicAcrossCalls) {
  GenOptions opts;
  opts.num_tuples = 50;
  opts.seed = 77;
  Relation a = MakeKeyedRelation(opts);
  Relation b = MakeKeyedRelation(opts);
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.rows()[size_t(i)], b.rows()[size_t(i)]);
  }
}

TEST(DatagenTest, EmployeeRelationShape) {
  Relation emp = MakeEmployeeRelation(500, 64, 3);
  ASSERT_EQ(emp.num_tuples(), 500);
  EXPECT_EQ(emp.schema().record_size(), 64);
  EXPECT_TRUE(emp.schema().ColumnIndex("name").ok());
  EXPECT_TRUE(emp.schema().ColumnIndex("salary").ok());
  // emp_ids are a permutation.
  std::set<int64_t> ids;
  for (const Row& row : emp.rows()) ids.insert(std::get<int64_t>(row[0]));
  EXPECT_EQ(ids.size(), 500u);
  // Names come from the stem set.
  const std::string& name = std::get<std::string>(emp.rows()[0][1]);
  EXPECT_FALSE(name.empty());
  EXPECT_NE(name.find('_'), std::string::npos);
}

}  // namespace
}  // namespace mmdb
