# Empty dependencies file for bench_parallel_joins.
# This may be replaced when dependencies are built.
