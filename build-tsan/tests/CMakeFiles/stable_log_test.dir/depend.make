# Empty dependencies file for stable_log_test.
# This may be replaced when dependencies are built.
