#include "txn/banking.h"

#include <gtest/gtest.h>

#include "db/database.h"

namespace mmdb {
namespace {

using WalKind = Database::TxnPlaneOptions::WalKind;

BankingOptions SmallBank() {
  BankingOptions opts;
  opts.num_accounts = 200;
  opts.num_threads = 4;
  opts.duration = std::chrono::milliseconds(150);
  return opts;
}

Database::TxnPlaneOptions FastPlane(WalKind kind) {
  Database::TxnPlaneOptions topts;
  topts.wal_kind = kind;
  topts.num_records = 200;
  topts.log_write_latency = std::chrono::microseconds(50);
  return topts;
}

TEST(BankingTest, AccountCodecRoundTrip) {
  std::string rec = EncodeAccount(123456, 72);
  EXPECT_EQ(rec.size(), 72u);
  EXPECT_EQ(DecodeAccount(rec), 123456);
  EXPECT_EQ(DecodeAccount(EncodeAccount(-5, 72)), -5);
}

TEST(BankingTest, TypicalTransactionWritesAboutFourHundredLogBytes) {
  // §5.2's arithmetic hinges on ~400 log bytes per transaction.
  Database db;
  ASSERT_TRUE(db.EnableTransactions(FastPlane(WalKind::kSingle)).ok());
  BankingOptions opts = SmallBank();
  ASSERT_TRUE(InitAccounts(db.recoverable_store(), opts).ok());
  Random rng(1);
  constexpr int kTxns = 50;
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(RunOneTransfer(db.txn_manager(), opts, &rng).ok());
  }
  const double bytes_per_txn =
      double(db.wal()->stats().logical_bytes) / kTxns;
  EXPECT_NEAR(bytes_per_txn, 400, 100);
}

TEST(BankingTest, SingleTransferMovesMoneyExactly) {
  Database db;
  ASSERT_TRUE(db.EnableTransactions(FastPlane(WalKind::kSingle)).ok());
  BankingOptions opts = SmallBank();
  ASSERT_TRUE(InitAccounts(db.recoverable_store(), opts).ok());
  const int64_t before = *TotalBalance(db.recoverable_store(), opts);
  Random rng(2);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(RunOneTransfer(db.txn_manager(), opts, &rng).ok());
  }
  EXPECT_EQ(*TotalBalance(db.recoverable_store(), opts), before);
  EXPECT_EQ(db.txn_manager()->stats().committed, 25);
}

class BankingWalKindTest : public ::testing::TestWithParam<WalKind> {};

TEST_P(BankingWalKindTest, ConcurrentWorkloadConservesBalance) {
  Database db;
  ASSERT_TRUE(db.EnableTransactions(FastPlane(GetParam())).ok());
  BankingOptions opts = SmallBank();
  ASSERT_TRUE(InitAccounts(db.recoverable_store(), opts).ok());
  const int64_t before = *TotalBalance(db.recoverable_store(), opts);
  const BankingResult result =
      RunBankingWorkload(db.txn_manager(), opts);
  EXPECT_GT(result.committed, 0);
  EXPECT_EQ(*TotalBalance(db.recoverable_store(), opts), before);
}

TEST_P(BankingWalKindTest, CrashRecoveryConservesBalanceUnderLoad) {
  Database db;
  Database::TxnPlaneOptions topts = FastPlane(GetParam());
  topts.start_checkpointer = true;  // fuzzy checkpoints during the run
  topts.checkpointer_options.sweep_interval = std::chrono::milliseconds(10);
  ASSERT_TRUE(db.EnableTransactions(topts).ok());
  BankingOptions opts = SmallBank();
  ASSERT_TRUE(InitAccounts(db.recoverable_store(), opts).ok());
  // The raw init writes are unlogged: persist them deterministically (the
  // background checkpointer would get there, but races the crash).
  ASSERT_TRUE(db.CheckpointNow().ok());
  const int64_t before = *TotalBalance(db.recoverable_store(), opts);
  RunBankingWorkload(db.txn_manager(), opts);
  ASSERT_TRUE(db.Crash().ok());
  auto stats = db.Recover();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(*TotalBalance(db.recoverable_store(), opts), before);
  // The recovered database accepts new work.
  Random rng(3);
  ASSERT_TRUE(RunOneTransfer(db.txn_manager(), opts, &rng).ok());
  EXPECT_EQ(*TotalBalance(db.recoverable_store(), opts), before);
}

INSTANTIATE_TEST_SUITE_P(
    AllWalKinds, BankingWalKindTest,
    ::testing::Values(WalKind::kSingleNoGroupCommit, WalKind::kSingle,
                      WalKind::kPartitioned, WalKind::kStable),
    [](const auto& info) {
      switch (info.param) {
        case WalKind::kSingleNoGroupCommit:
          return "NoGroupCommit";
        case WalKind::kSingle:
          return "GroupCommit";
        case WalKind::kPartitioned:
          return "Partitioned";
        case WalKind::kStable:
          return "Stable";
      }
      return "Unknown";
    });

TEST(BankingTest, UnorderedLocksTriggerDeadlockHandling) {
  // With ordered_locks off, concurrent transfers deadlock occasionally;
  // victims abort, money is still conserved.
  Database db;
  ASSERT_TRUE(db.EnableTransactions(FastPlane(WalKind::kSingle)).ok());
  BankingOptions opts = SmallBank();
  opts.ordered_locks = false;
  opts.num_accounts = 20;  // high contention
  opts.num_threads = 8;
  Database::TxnPlaneOptions topts;
  ASSERT_TRUE(InitAccounts(db.recoverable_store(), opts).ok());
  const int64_t before = *TotalBalance(db.recoverable_store(), opts);
  const BankingResult result = RunBankingWorkload(db.txn_manager(), opts);
  EXPECT_GT(result.committed, 0);
  EXPECT_EQ(*TotalBalance(db.recoverable_store(), opts), before);
}

TEST(BankingTest, GroupCommitBeatsPerCommitFlushing) {
  // The §5.2 ladder's first step, at test scale: with a 2 ms page write
  // and 16 clients, group commit must deliver clearly higher throughput.
  auto run = [&](WalKind kind) {
    Database db;
    Database::TxnPlaneOptions topts = FastPlane(kind);
    topts.log_write_latency = std::chrono::milliseconds(2);
    MMDB_CHECK(db.EnableTransactions(topts).ok());
    BankingOptions opts = SmallBank();
    opts.num_threads = 16;
    opts.duration = std::chrono::milliseconds(400);
    MMDB_CHECK(InitAccounts(db.recoverable_store(), opts).ok());
    return RunBankingWorkload(db.txn_manager(), opts);
  };
  const BankingResult baseline = run(WalKind::kSingleNoGroupCommit);
  const BankingResult grouped = run(WalKind::kSingle);
  EXPECT_GT(grouped.tps, baseline.tps * 1.5);
  EXPECT_GT(grouped.wal.avg_commit_group, 1.5);
}

}  // namespace
}  // namespace mmdb
