#ifndef MMDB_TXN_LOG_RECORD_H_
#define MMDB_TXN_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace mmdb {

/// Log sequence number: a byte offset into the (logical) log stream.
using Lsn = int64_t;
using TxnId = int64_t;

constexpr Lsn kInvalidLsn = -1;
constexpr TxnId kInvalidTxn = -1;

/// Transaction ids at or above this value are SQL-statement commit ids
/// (Database::next_sql_stmt_txn_); ids below it belong to the record
/// plane's TransactionManager. Recovery keeps the two namespaces disjoint
/// by seeding each restart counter only from ids on its own side of the
/// boundary — a shared max would let an aborted record-plane txn reuse the
/// id of a logged SQL commit and be replayed as a winner.
constexpr TxnId kSqlStmtTxnBase = TxnId{1} << 40;

/// §5.4: "The log entries for a particular transaction are of the form
/// Begin Transaction ... End Transaction", with old/new values per update.
enum class LogRecordType : uint8_t {
  kBegin = 1,
  kUpdate = 2,
  kCommit = 3,
  kAbort = 4,
  kCheckpoint = 5,
};

std::string_view LogRecordTypeName(LogRecordType t);

/// Counters produced by ParseAll: how much of the scanned byte stream was
/// usable. Recovery surfaces these through RecoveryStats.
struct LogParseStats {
  int64_t records = 0;          ///< records parsed successfully
  int64_t corrupt_skipped = 0;  ///< resync events past checksum/framing damage
  int64_t torn_tail_bytes = 0;  ///< trailing bytes discarded as a torn tail
};

/// One physical log record. The paper's "typical" transaction writes ~400
/// bytes of log: 40 bytes of begin/commit framing plus 360 bytes of
/// old/new values — the banking workload is calibrated to match.
///
/// Wire form: magic(4) crc(4) type(1) txn(8) lsn(8) record_id(8)
/// old_len(4) new_len(4) old new. The CRC-32C covers every byte after the
/// crc field, so a bit flip anywhere in the record (header or payload) is
/// detected at parse time.
struct LogRecord {
  LogRecordType type = LogRecordType::kBegin;
  TxnId txn_id = kInvalidTxn;
  Lsn lsn = kInvalidLsn;  ///< assigned by the log manager at append

  // kUpdate only.
  int64_t record_id = -1;    ///< updated record in the RecoverableStore
  std::string old_value;     ///< undo image
  std::string new_value;     ///< redo image

  /// Serialized size in bytes (what the throughput arithmetic counts).
  int64_t SerializedSize() const;

  /// Appends the wire form to `out`.
  void AppendTo(std::string* out) const;

  /// Parses one record from `data` (at least `size` bytes); advances
  /// `*consumed`. Returns OutOfRange when `data` holds only a partial
  /// record (a torn tail after a crash), kCorruption when the checksum does
  /// not match (a bit flip), and InvalidArgument on bad framing.
  static StatusOr<LogRecord> Parse(const char* data, int64_t size,
                                   int64_t* consumed);

  /// Parses a concatenation of records, tolerating a torn tail and
  /// resynchronizing past corrupt records: on any parse failure the scan
  /// hunts forward for the next offset that parses as a whole valid record
  /// (magic AND checksum — framing alone is too easy to fake) and counts
  /// one corrupt_skipped event. If no later record validates, the remaining
  /// bytes are a torn tail and the scan stops.
  static std::vector<LogRecord> ParseAll(const char* data, int64_t size,
                                         LogParseStats* stats = nullptr);

  /// Strips the undo image (§5.4 log compression: "only new values are
  /// written to the disk based log ... approximately half of the size").
  LogRecord CompressForDisk() const;
};

}  // namespace mmdb

#endif  // MMDB_TXN_LOG_RECORD_H_
