#ifndef MMDB_TXN_LOCK_MANAGER_H_
#define MMDB_TXN_LOCK_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "common/status.h"
#include "txn/log_record.h"

namespace mmdb {

/// Lockable object id (a record id in the RecoverableStore).
using LockId = int64_t;

/// kIntentionExclusive declares finer-granularity exclusive intent under a
/// coarse lock (a table lock covering per-row locks): IX is compatible
/// with IX — two point-writers on the same table proceed concurrently,
/// serializing on their row locks — but conflicts with S and X, so whole-
/// table readers and writers still exclude them. An S + IX combination
/// held by one transaction escalates to X (SIX is approximated by X).
enum class LockMode { kShared, kIntentionExclusive, kExclusive };

/// Lock-mode compatibility matrix: S~S, IX~IX; everything else conflicts.
inline bool LockModesCompatible(LockMode a, LockMode b) {
  return a == b && a != LockMode::kExclusive;
}

/// The weakest mode subsuming both (S+IX and anything+X give X).
inline LockMode CombineLockModes(LockMode a, LockMode b) {
  return a == b ? a : LockMode::kExclusive;
}

/// §5.2's extended lock table: "Associated with each lock are three sets of
/// transactions: active transactions that currently hold the lock,
/// transactions that are waiting to be granted the lock, and pre-committed
/// transactions that have released the lock but have not yet committed."
///
/// Pre-committed holders do NOT block new requests — that is the whole
/// point of pre-commit — but every grant records them in the grantee's
/// dependency list, which the caller passes to Wal::AppendCommit so the
/// dependent's commit record cannot reach disk first.
///
/// Deadlocks among *active* holders are detected with a waits-for-graph
/// cycle check at block time; the requester is the victim (kDeadlock).
class LockManager {
 public:
  explicit LockManager(
      std::chrono::milliseconds wait_timeout = std::chrono::seconds(10))
      : wait_timeout_(wait_timeout) {}

  /// Acquires (or upgrades to) `mode` on `lock` for `txn`, blocking while
  /// incompatible active holders exist. On success appends the lock's
  /// current pre-committed holders to `*deps`.
  Status Acquire(TxnId txn, LockId lock, LockMode mode,
                 std::vector<TxnId>* deps);

  /// Moves every lock held by `txn` from the holders set to the
  /// pre-committed set and wakes waiters ("releases all locks without
  /// waiting for the commit record to be written").
  void PreCommit(TxnId txn);

  /// Removes `txn` from all pre-committed sets once its commit record is
  /// durable (dependents stop recording it).
  void FinalizeCommit(TxnId txn);

  /// Abort path: releases all of `txn`'s locks immediately (it was never
  /// pre-committed, so no one depends on it).
  void ReleaseAll(TxnId txn);

  /// Number of lock table entries (tests).
  int64_t NumLocks() const;

  struct Stats {
    int64_t acquisitions = 0;
    int64_t waits = 0;
    int64_t deadlocks = 0;
    int64_t dependencies_recorded = 0;
  };
  Stats stats() const;

 private:
  struct Lock {
    std::map<TxnId, LockMode> holders;
    std::set<TxnId> pre_committed;
    int64_t waiting = 0;
  };

  bool Compatible(const Lock& lock, TxnId txn, LockMode mode) const;
  /// True if `from` can reach `to` in the waits-for graph.
  bool PathExists(TxnId from, TxnId to) const;

  std::chrono::milliseconds wait_timeout_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<LockId, Lock> locks_;
  std::map<TxnId, std::set<LockId>> held_;           // txn -> locks held
  std::map<TxnId, std::set<LockId>> pre_committed_;  // txn -> locks pre-rel.
  std::map<TxnId, std::set<TxnId>> waits_for_;       // blocked -> blockers
  Stats stats_;
};

}  // namespace mmdb

#endif  // MMDB_TXN_LOCK_MANAGER_H_
