#include "exec/exec_context.h"

#include "common/check.h"
#include "storage/page.h"

namespace mmdb {

int64_t ExecContext::TuplesInPages(const Schema& schema, int64_t pages) const {
  const int32_t tpp = Page::Capacity(page_size(), schema.record_size());
  MMDB_CHECK(tpp > 0);
  return static_cast<int64_t>(double(pages) * double(tpp) / fudge);
}

}  // namespace mmdb
