file(REMOVE_RECURSE
  "CMakeFiles/mmdb_sim.dir/sim/cost_clock.cc.o"
  "CMakeFiles/mmdb_sim.dir/sim/cost_clock.cc.o.d"
  "CMakeFiles/mmdb_sim.dir/sim/fault_injector.cc.o"
  "CMakeFiles/mmdb_sim.dir/sim/fault_injector.cc.o.d"
  "CMakeFiles/mmdb_sim.dir/sim/simulated_disk.cc.o"
  "CMakeFiles/mmdb_sim.dir/sim/simulated_disk.cc.o.d"
  "CMakeFiles/mmdb_sim.dir/sim/stable_memory.cc.o"
  "CMakeFiles/mmdb_sim.dir/sim/stable_memory.cc.o.d"
  "libmmdb_sim.a"
  "libmmdb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
