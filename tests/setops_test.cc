#include "exec/setops.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "storage/datagen.h"

namespace mmdb {
namespace {

Schema PairSchema() {
  return Schema({Column::Int64("a"), Column::Int64("b")});
}

Relation MakePairs(const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  Relation rel(PairSchema());
  for (const auto& [a, b] : pairs) rel.Add({a, b});
  return rel;
}

std::multiset<std::string> Canonical(const Relation& rel) {
  std::multiset<std::string> out;
  for (const Row& row : rel.rows()) out.insert(RowToString(row));
  return out;
}

TEST(SetOpTest, UnionDeduplicates) {
  Relation a = MakePairs({{1, 1}, {2, 2}, {2, 2}, {3, 3}});
  Relation b = MakePairs({{2, 2}, {4, 4}});
  ExecEnv env(64);
  auto out = HashSetOp(SetOp::kUnion, a, b, &env.ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(Canonical(*out),
            (std::multiset<std::string>{"1|1", "2|2", "3|3", "4|4"}));
}

TEST(SetOpTest, IntersectAndDifference) {
  Relation a = MakePairs({{1, 1}, {2, 2}, {3, 3}, {3, 3}});
  Relation b = MakePairs({{2, 2}, {3, 3}, {9, 9}});
  ExecEnv env(64);
  auto inter = HashSetOp(SetOp::kIntersect, a, b, &env.ctx);
  ASSERT_TRUE(inter.ok());
  EXPECT_EQ(Canonical(*inter), (std::multiset<std::string>{"2|2", "3|3"}));
  auto diff = HashSetOp(SetOp::kDifference, a, b, &env.ctx);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(Canonical(*diff), (std::multiset<std::string>{"1|1"}));
}

TEST(SetOpTest, SchemaMismatchRejected) {
  Relation a = MakePairs({{1, 1}});
  Relation b(Schema({Column::Int64("x")}));
  ExecEnv env(64);
  EXPECT_EQ(HashSetOp(SetOp::kUnion, a, b, &env.ctx).status().code(),
            StatusCode::kInvalidArgument);
}

struct SetOpCase {
  SetOp op;
  const char* name;
};

class SetOpSpillTest : public ::testing::TestWithParam<SetOpCase> {};

TEST_P(SetOpSpillTest, SpillingMatchesInMemory) {
  // Property: the partitioned (tiny-memory) execution equals the
  // one-pass execution on random multisets with heavy overlap.
  GenOptions opts;
  opts.num_tuples = 6000;
  opts.tuple_width = 32;
  opts.distribution = KeyDistribution::kUniform;
  opts.key_range = 300;
  opts.seed = 1;
  Relation a = MakeKeyedRelation(opts);
  opts.seed = 2;
  Relation b = MakeKeyedRelation(opts);
  // Collapse payload so duplicates actually exist.
  for (Row& row : a.mutable_rows()) row[1] = int64_t{0};
  for (Row& row : b.mutable_rows()) row[1] = int64_t{0};

  ExecEnv big(1 << 16), tiny(2);
  auto in_memory = HashSetOp(GetParam().op, a, b, &big.ctx);
  auto spilled = HashSetOp(GetParam().op, a, b, &tiny.ctx);
  ASSERT_TRUE(in_memory.ok());
  ASSERT_TRUE(spilled.ok());
  EXPECT_EQ(Canonical(*in_memory), Canonical(*spilled));
  EXPECT_GT(tiny.clock.counters().rand_ios + tiny.clock.counters().seq_ios,
            0);
  EXPECT_EQ(tiny.disk.TotalPages(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, SetOpSpillTest,
    ::testing::Values(SetOpCase{SetOp::kUnion, "union"},
                      SetOpCase{SetOp::kIntersect, "intersect"},
                      SetOpCase{SetOp::kDifference, "difference"}),
    [](const auto& info) { return info.param.name; });

TEST(SemiJoinTest, MatchesReferenceSemantics) {
  Schema rs({Column::Int64("k"), Column::Int64("v")});
  Schema ss({Column::Int64("k")});
  Relation r(rs), s(ss);
  for (int64_t i = 0; i < 20; ++i) r.Add({i % 10, i});
  for (int64_t k : {2, 4, 6}) s.Add({k});
  s.Add({int64_t{2}});  // duplicate in s must not duplicate output
  ExecEnv env(64);
  auto semi = HashSemiJoin(r, s, JoinSpec{0, 0}, &env.ctx);
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(semi->num_tuples(), 6);  // keys 2,4,6 appear twice each in r
  for (const Row& row : semi->rows()) {
    const int64_t k = std::get<int64_t>(row[0]);
    EXPECT_TRUE(k == 2 || k == 4 || k == 6);
  }
  auto anti = HashAntiJoin(r, s, JoinSpec{0, 0}, &env.ctx);
  ASSERT_TRUE(anti.ok());
  EXPECT_EQ(anti->num_tuples(), 14);
  // Semi + anti partition r exactly.
  EXPECT_EQ(semi->num_tuples() + anti->num_tuples(), r.num_tuples());
}

TEST(SemiJoinTest, SpillingMatchesInMemory) {
  GenOptions opts;
  opts.num_tuples = 8000;
  opts.tuple_width = 32;
  opts.distribution = KeyDistribution::kUniform;
  opts.key_range = 1000;
  opts.seed = 3;
  Relation r = MakeKeyedRelation(opts);
  opts.num_tuples = 5000;
  opts.seed = 4;
  Relation s = MakeKeyedRelation(opts);
  ExecEnv big(1 << 16), tiny(2);
  auto a = HashSemiJoin(r, s, JoinSpec{0, 0}, &big.ctx);
  auto b = HashSemiJoin(r, s, JoinSpec{0, 0}, &tiny.ctx);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Canonical(*a), Canonical(*b));
  EXPECT_EQ(tiny.disk.TotalPages(), 0);
}

TEST(DivisionTest, StudentsWhoPassedEveryCourse) {
  // enrolled(student, course) ÷ required(course)
  Schema es({Column::Char("student", 8), Column::Int64("course")});
  Relation enrolled(es);
  auto enroll = [&](const char* s, std::initializer_list<int64_t> courses) {
    for (int64_t c : courses) enrolled.Add({std::string(s), c});
  };
  enroll("ada", {1, 2, 3});
  enroll("bob", {1, 3});
  enroll("cyd", {1, 2, 3, 4});
  enroll("dee", {2});
  Relation required(Schema({Column::Int64("course")}));
  for (int64_t c : {1, 2, 3}) required.Add({c});

  ExecEnv env(64);
  auto out = HashDivision(enrolled, {0}, 1, required, 0, &env.ctx);
  ASSERT_TRUE(out.ok());
  std::set<std::string> names;
  for (const Row& row : out->rows()) {
    names.insert(std::get<std::string>(row[0]));
  }
  EXPECT_EQ(names, (std::set<std::string>{"ada", "cyd"}));
}

TEST(DivisionTest, EmptyDivisorYieldsEmpty) {
  Relation r = MakePairs({{1, 1}, {2, 2}});
  Relation s(Schema({Column::Int64("b")}));
  ExecEnv env(64);
  auto out = HashDivision(r, {0}, 1, s, 0, &env.ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_tuples(), 0);
}

TEST(DivisionTest, DuplicateDividendRowsAreHarmless) {
  Relation r = MakePairs({{1, 5}, {1, 5}, {1, 6}, {2, 5}});
  Relation s(Schema({Column::Int64("b")}));
  s.Add({int64_t{5}});
  s.Add({int64_t{6}});
  ExecEnv env(64);
  auto out = HashDivision(r, {0}, 1, s, 0, &env.ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_tuples(), 1);
  EXPECT_EQ(std::get<int64_t>(out->rows()[0][0]), 1);
}

TEST(DivisionTest, SpillingMatchesInMemory) {
  // Large dividend with known structure: group g covers divisor value d
  // iff d <= g % 7 (so groups with g % 7 == 6 cover {0..6} ⊇ {0,3,5}...).
  Schema rs({Column::Int64("g"), Column::Int64("d")});
  Relation r(rs);
  for (int64_t g = 0; g < 3000; ++g) {
    for (int64_t d = 0; d <= g % 7; ++d) r.Add({g, d});
  }
  Relation s(Schema({Column::Int64("d")}));
  for (int64_t d : {0, 3, 5}) s.Add({d});

  ExecEnv big(1 << 16), tiny(2);
  auto a = HashDivision(r, {0}, 1, s, 0, &big.ctx);
  auto b = HashDivision(r, {0}, 1, s, 0, &tiny.ctx);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Canonical(*a), Canonical(*b));
  // Groups with g % 7 >= 5 cover d in {0,3,5}: residues 5 and 6, i.e.
  // ceil(2995/7) + ceil(2994/7) = 428 + 428 groups.
  EXPECT_EQ(a->num_tuples(), 856);
  EXPECT_EQ(tiny.disk.TotalPages(), 0);
}

TEST(DivisionTest, RejectsBadColumns) {
  Relation r = MakePairs({{1, 1}});
  Relation s(Schema({Column::Int64("b")}));
  ExecEnv env(64);
  EXPECT_FALSE(HashDivision(r, {}, 1, s, 0, &env.ctx).ok());
  EXPECT_FALSE(HashDivision(r, {9}, 1, s, 0, &env.ctx).ok());
  EXPECT_FALSE(HashDivision(r, {0}, 9, s, 0, &env.ctx).ok());
  EXPECT_FALSE(HashDivision(r, {0}, 1, s, 9, &env.ctx).ok());
}

}  // namespace
}  // namespace mmdb
