# Empty compiler generated dependencies file for mmdb_cost.
# This may be replaced when dependencies are built.
