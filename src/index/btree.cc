#include "index/btree.h"

#include <cstring>

#include "common/check.h"

namespace mmdb {

namespace {
constexpr int64_t kCountOffset = 0;
constexpr int64_t kIsLeafOffset = 2;
constexpr int64_t kNextLeafOffset = 4;
}  // namespace

uint16_t BPlusTree::NodeView::count() const {
  uint16_t n;
  std::memcpy(&n, data + kCountOffset, sizeof(n));
  return n;
}
void BPlusTree::NodeView::set_count(uint16_t n) {
  std::memcpy(data + kCountOffset, &n, sizeof(n));
}
bool BPlusTree::NodeView::is_leaf() const {
  return data[kIsLeafOffset] != 0;
}
void BPlusTree::NodeView::set_is_leaf(bool leaf) {
  data[kIsLeafOffset] = leaf ? 1 : 0;
}
uint32_t BPlusTree::NodeView::next_leaf() const {
  uint32_t p;
  std::memcpy(&p, data + kNextLeafOffset, sizeof(p));
  return p;
}
void BPlusTree::NodeView::set_next_leaf(uint32_t p) {
  std::memcpy(data + kNextLeafOffset, &p, sizeof(p));
}
char* BPlusTree::NodeView::LeafEntry(int i) {
  return data + kHeaderSize +
         static_cast<int64_t>(i) * tree->leaf_entry_size();
}
char* BPlusTree::NodeView::InternalKey(int i) {
  return data + kHeaderSize + 4 * static_cast<int64_t>(tree->max_fanout_) +
         static_cast<int64_t>(i) * tree->key_width_;
}
uint32_t BPlusTree::NodeView::Child(int i) const {
  uint32_t p;
  std::memcpy(&p, data + kHeaderSize + 4 * static_cast<int64_t>(i), sizeof(p));
  return p;
}
void BPlusTree::NodeView::SetChild(int i, uint32_t p) {
  std::memcpy(data + kHeaderSize + 4 * static_cast<int64_t>(i), &p, sizeof(p));
}

BPlusTree::BPlusTree(BufferPool* pool, PageFile* file, BTreeOptions options)
    : pool_(pool),
      file_(file),
      key_width_(options.key_width),
      payload_width_(options.payload_width) {
  MMDB_CHECK(key_width_ > 0);
  MMDB_CHECK(payload_width_ >= 0);
  MMDB_CHECK_MSG(file->num_pages() == 0, "BPlusTree requires an empty file");
  const int64_t p = file->page_size();
  // Internal node: header + 4*fanout (children) + K*(fanout-1) (keys) <= P.
  max_fanout_ = static_cast<int32_t>((p - kHeaderSize + key_width_) /
                                     (4 + key_width_));
  leaf_capacity_ = static_cast<int32_t>((p - kHeaderSize) / leaf_entry_size());
  MMDB_CHECK_MSG(max_fanout_ >= 3, "page too small for internal node");
  MMDB_CHECK_MSG(leaf_capacity_ >= 2, "page too small for two leaf entries");
}

int BPlusTree::Compare(const char* a, const char* b) {
  ++stats_.comparisons;
  return std::memcmp(a, b, static_cast<size_t>(key_width_));
}

int BPlusTree::LowerBoundLeaf(NodeView node, const char* key) {
  int lo = 0, hi = node.count();
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (Compare(node.LeafEntry(mid), key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int BPlusTree::UpperBoundLeaf(NodeView node, const char* key) {
  int lo = 0, hi = node.count();
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (Compare(node.LeafEntry(mid), key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int BPlusTree::ChildIndex(NodeView node, const char* key) {
  // upper_bound over separator keys: equal keys descend right, matching the
  // insertion convention (duplicates append after existing equals).
  int lo = 0, hi = node.count();
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (Compare(node.InternalKey(mid), key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status BPlusTree::InsertRec(uint32_t page_no, const char* key,
                            const char* payload, SplitResult* out) {
  out->split = false;
  MMDB_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(file_->id(), page_no));
  ++stats_.node_visits;
  NodeView node = View(ref.data());

  if (node.is_leaf()) {
    const int n = node.count();
    const int pos = UpperBoundLeaf(node, key);
    const int32_t esz = leaf_entry_size();
    if (n < leaf_capacity_) {
      std::memmove(node.LeafEntry(pos + 1), node.LeafEntry(pos),
                   static_cast<size_t>((n - pos)) * esz);
      std::memcpy(node.LeafEntry(pos), key, static_cast<size_t>(key_width_));
      if (payload_width_ > 0) {
        std::memcpy(node.LeafEntry(pos) + key_width_, payload,
                    static_cast<size_t>(payload_width_));
      }
      node.set_count(static_cast<uint16_t>(n + 1));
      ref.MarkDirty();
      return Status::OK();
    }
    // Split: gather n+1 entries in order, distribute half and half.
    std::vector<char> all(static_cast<size_t>(n + 1) * esz);
    std::memcpy(all.data(), node.LeafEntry(0),
                static_cast<size_t>(pos) * esz);
    std::memcpy(all.data() + static_cast<size_t>(pos) * esz, key,
                static_cast<size_t>(key_width_));
    if (payload_width_ > 0) {
      std::memcpy(all.data() + static_cast<size_t>(pos) * esz + key_width_,
                  payload, static_cast<size_t>(payload_width_));
    }
    std::memcpy(all.data() + static_cast<size_t>(pos + 1) * esz,
                node.LeafEntry(pos), static_cast<size_t>(n - pos) * esz);

    MMDB_ASSIGN_OR_RETURN(auto right_ref, pool_->New(file_->id()));
    NodeView right = View(right_ref.data());
    right.set_is_leaf(true);

    const int total = n + 1;
    const int left_n = (total + 1) / 2;
    const int right_n = total - left_n;
    std::memcpy(node.LeafEntry(0), all.data(),
                static_cast<size_t>(left_n) * esz);
    node.set_count(static_cast<uint16_t>(left_n));
    std::memcpy(right.LeafEntry(0),
                all.data() + static_cast<size_t>(left_n) * esz,
                static_cast<size_t>(right_n) * esz);
    right.set_count(static_cast<uint16_t>(right_n));

    right.set_next_leaf(node.next_leaf());
    node.set_next_leaf(static_cast<uint32_t>(right_ref.page_no()));
    ref.MarkDirty();
    right_ref.MarkDirty();

    out->split = true;
    out->right_page = static_cast<uint32_t>(right_ref.page_no());
    out->separator.assign(right.LeafEntry(0),
                          right.LeafEntry(0) + key_width_);
    return Status::OK();
  }

  // Internal node.
  const int ci = ChildIndex(node, key);
  const uint32_t child = node.Child(ci);
  SplitResult child_split;
  // Release the parent pin during the child's recursion is not required for
  // correctness here (single-threaded), and keeping it pinned guarantees the
  // view stays valid across the recursive call.
  MMDB_RETURN_IF_ERROR(InsertRec(child, key, payload, &child_split));
  if (!child_split.split) return Status::OK();

  const int n = node.count();  // number of keys; children = n + 1
  if (n < max_fanout_ - 1) {
    // Shift keys [ci, n) right, children [ci+1, n+1) right.
    std::memmove(node.InternalKey(ci + 1), node.InternalKey(ci),
                 static_cast<size_t>(n - ci) * key_width_);
    for (int i = n + 1; i > ci + 1; --i) {
      node.SetChild(i, node.Child(i - 1));
    }
    std::memcpy(node.InternalKey(ci), child_split.separator.data(),
                static_cast<size_t>(key_width_));
    node.SetChild(ci + 1, child_split.right_page);
    node.set_count(static_cast<uint16_t>(n + 1));
    ref.MarkDirty();
    return Status::OK();
  }

  // Split internal node: n+1 keys and n+2 children after the insertion.
  std::vector<std::vector<char>> keys;
  std::vector<uint32_t> children;
  keys.reserve(static_cast<size_t>(n + 1));
  children.reserve(static_cast<size_t>(n + 2));
  for (int i = 0; i <= n; ++i) children.push_back(node.Child(i));
  for (int i = 0; i < n; ++i) {
    keys.emplace_back(node.InternalKey(i), node.InternalKey(i) + key_width_);
  }
  keys.insert(keys.begin() + ci, child_split.separator);
  children.insert(children.begin() + ci + 1, child_split.right_page);

  const int total_keys = n + 1;
  const int mid = total_keys / 2;  // keys[mid] promotes

  MMDB_ASSIGN_OR_RETURN(auto right_ref, pool_->New(file_->id()));
  NodeView right = View(right_ref.data());
  right.set_is_leaf(false);

  // Left keeps keys [0, mid) and children [0, mid].
  for (int i = 0; i < mid; ++i) {
    std::memcpy(node.InternalKey(i), keys[static_cast<size_t>(i)].data(),
                static_cast<size_t>(key_width_));
  }
  for (int i = 0; i <= mid; ++i) {
    node.SetChild(i, children[static_cast<size_t>(i)]);
  }
  node.set_count(static_cast<uint16_t>(mid));

  // Right gets keys (mid, total) and children [mid+1, total+1].
  const int right_keys = total_keys - mid - 1;
  for (int i = 0; i < right_keys; ++i) {
    std::memcpy(right.InternalKey(i),
                keys[static_cast<size_t>(mid + 1 + i)].data(),
                static_cast<size_t>(key_width_));
  }
  for (int i = 0; i <= right_keys; ++i) {
    right.SetChild(i, children[static_cast<size_t>(mid + 1 + i)]);
  }
  right.set_count(static_cast<uint16_t>(right_keys));

  ref.MarkDirty();
  right_ref.MarkDirty();

  out->split = true;
  out->right_page = static_cast<uint32_t>(right_ref.page_no());
  out->separator = keys[static_cast<size_t>(mid)];
  return Status::OK();
}

Status BPlusTree::Insert(const char* key, const char* payload) {
  if (payload_width_ > 0 && payload == nullptr) {
    return Status::InvalidArgument("payload required");
  }
  if (root_ == kNoPage) {
    MMDB_ASSIGN_OR_RETURN(auto ref, pool_->New(file_->id()));
    NodeView node = View(ref.data());
    node.set_is_leaf(true);
    node.set_next_leaf(kNoPage);
    ref.MarkDirty();
    root_ = static_cast<uint32_t>(ref.page_no());
  }
  SplitResult split;
  MMDB_RETURN_IF_ERROR(InsertRec(root_, key, payload, &split));
  if (split.split) {
    MMDB_ASSIGN_OR_RETURN(auto ref, pool_->New(file_->id()));
    NodeView node = View(ref.data());
    node.set_is_leaf(false);
    node.set_next_leaf(kNoPage);
    node.SetChild(0, root_);
    node.SetChild(1, split.right_page);
    std::memcpy(node.InternalKey(0), split.separator.data(),
                static_cast<size_t>(key_width_));
    node.set_count(1);
    ref.MarkDirty();
    root_ = static_cast<uint32_t>(ref.page_no());
    ++height_;
  }
  ++size_;
  return Status::OK();
}

Status BPlusTree::BulkLoad(
    const std::function<bool(char* key, char* payload)>& next,
    double fill_factor) {
  if (root_ != kNoPage) {
    return Status::FailedPrecondition("BulkLoad requires an empty tree");
  }
  if (fill_factor <= 0.0 || fill_factor > 1.0) {
    return Status::InvalidArgument("fill_factor must be in (0, 1]");
  }
  const int leaf_target = std::max(
      1, static_cast<int>(double(leaf_capacity_) * fill_factor));
  const int fanout_target = std::max(
      2, static_cast<int>(double(max_fanout_) * fill_factor));
  const size_t kw = static_cast<size_t>(key_width_);

  // ---- Leaf level: pack left to right, chaining as we go.
  struct LevelEntry {
    std::vector<char> min_key;
    uint32_t page;
  };
  std::vector<LevelEntry> level;
  std::vector<char> key(kw);
  std::vector<char> payload(static_cast<size_t>(
      payload_width_ > 0 ? payload_width_ : 1));
  std::vector<char> prev_key(kw);
  bool have_prev = false;
  uint32_t prev_leaf = kNoPage;

  bool more = next(key.data(), payload.data());
  while (more) {
    MMDB_ASSIGN_OR_RETURN(auto ref, pool_->New(file_->id()));
    NodeView leaf = View(ref.data());
    leaf.set_is_leaf(true);
    leaf.set_next_leaf(kNoPage);
    int n = 0;
    while (more && n < leaf_target) {
      if (have_prev && std::memcmp(prev_key.data(), key.data(), kw) > 0) {
        return Status::InvalidArgument("bulk-load input is not sorted");
      }
      std::memcpy(leaf.LeafEntry(n), key.data(), kw);
      if (payload_width_ > 0) {
        std::memcpy(leaf.LeafEntry(n) + key_width_, payload.data(),
                    static_cast<size_t>(payload_width_));
      }
      prev_key = key;
      have_prev = true;
      ++n;
      ++size_;
      more = next(key.data(), payload.data());
    }
    leaf.set_count(static_cast<uint16_t>(n));
    ref.MarkDirty();
    const uint32_t page = static_cast<uint32_t>(ref.page_no());
    if (prev_leaf != kNoPage) {
      MMDB_ASSIGN_OR_RETURN(auto prev_ref,
                            pool_->Fetch(file_->id(), prev_leaf));
      View(prev_ref.data()).set_next_leaf(page);
      prev_ref.MarkDirty();
    }
    prev_leaf = page;
    LevelEntry entry;
    entry.min_key.assign(leaf.LeafEntry(0), leaf.LeafEntry(0) + key_width_);
    entry.page = page;
    level.push_back(std::move(entry));
  }
  if (level.empty()) return Status::OK();  // empty input: stay empty

  // ---- Internal levels, bottom-up.
  height_ = 1;
  while (level.size() > 1) {
    std::vector<LevelEntry> parent_level;
    size_t i = 0;
    while (i < level.size()) {
      const size_t remaining = level.size() - i;
      size_t take = std::min<size_t>(static_cast<size_t>(fanout_target),
                                     remaining);
      // Never leave a single orphan child for the final node: an internal
      // node needs at least one key (two children). Absorb the orphan if
      // the node has capacity, otherwise shrink this node by one.
      if (remaining - take == 1) {
        if (take + 1 <= static_cast<size_t>(max_fanout_)) {
          ++take;
        } else {
          --take;
        }
      }
      if (take < 2) take = std::min<size_t>(2, remaining);
      MMDB_ASSIGN_OR_RETURN(auto ref, pool_->New(file_->id()));
      NodeView node = View(ref.data());
      node.set_is_leaf(false);
      node.set_next_leaf(kNoPage);
      for (size_t c = 0; c < take; ++c) {
        node.SetChild(static_cast<int>(c), level[i + c].page);
        if (c > 0) {
          std::memcpy(node.InternalKey(static_cast<int>(c - 1)),
                      level[i + c].min_key.data(), kw);
        }
      }
      node.set_count(static_cast<uint16_t>(take - 1));
      ref.MarkDirty();
      LevelEntry entry;
      entry.min_key = level[i].min_key;
      entry.page = static_cast<uint32_t>(ref.page_no());
      parent_level.push_back(std::move(entry));
      i += take;
    }
    level = std::move(parent_level);
    ++height_;
  }
  root_ = level.front().page;
  return Status::OK();
}

Status BPlusTree::Find(const char* key, char* payload_out) {
  if (root_ == kNoPage) return Status::NotFound("empty tree");
  uint32_t page = root_;
  while (true) {
    MMDB_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(file_->id(), page));
    ++stats_.node_visits;
    NodeView node = View(ref.data());
    if (!node.is_leaf()) {
      page = node.Child(ChildIndex(node, key));
      continue;
    }
    const int pos = LowerBoundLeaf(node, key);
    if (pos < node.count() &&
        std::memcmp(node.LeafEntry(pos), key,
                    static_cast<size_t>(key_width_)) == 0) {
      ++stats_.comparisons;  // the final equality check
      if (payload_width_ > 0 && payload_out != nullptr) {
        std::memcpy(payload_out, node.LeafEntry(pos) + key_width_,
                    static_cast<size_t>(payload_width_));
      }
      return Status::OK();
    }
    ++stats_.comparisons;
    return Status::NotFound("key not in B+-tree");
  }
}

Status BPlusTree::Delete(const char* key) {
  if (root_ == kNoPage) return Status::NotFound("empty tree");
  // Descend to the LEFTMOST leaf that can contain `key` (lower-bound
  // descent), then walk the chain: duplicates may span several leaves.
  uint32_t page = root_;
  while (true) {
    MMDB_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(file_->id(), page));
    ++stats_.node_visits;
    NodeView node = View(ref.data());
    if (!node.is_leaf()) {
      // lower_bound over separators: equal keys may live in the left child.
      int lo = 0, hi = node.count();
      while (lo < hi) {
        int mid = (lo + hi) / 2;
        if (Compare(node.InternalKey(mid), key) < 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      page = node.Child(lo);
      continue;
    }
    break;
  }
  // Walk the leaf chain until found or passed.
  while (page != kNoPage) {
    MMDB_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(file_->id(), page));
    ++stats_.node_visits;
    NodeView node = View(ref.data());
    const int n = node.count();
    const int pos = LowerBoundLeaf(node, key);
    if (pos < n) {
      if (std::memcmp(node.LeafEntry(pos), key,
                      static_cast<size_t>(key_width_)) == 0) {
        ++stats_.comparisons;
        const int32_t esz = leaf_entry_size();
        std::memmove(node.LeafEntry(pos), node.LeafEntry(pos + 1),
                     static_cast<size_t>(n - pos - 1) * esz);
        node.set_count(static_cast<uint16_t>(n - 1));
        ref.MarkDirty();
        --size_;
        return Status::OK();
      }
      ++stats_.comparisons;
      return Status::NotFound("key not in B+-tree");
    }
    page = node.next_leaf();
  }
  return Status::NotFound("key not in B+-tree");
}

Status BPlusTree::ScanFrom(
    const char* key,
    const std::function<bool(const char*, const char*)>& fn, int64_t limit) {
  if (root_ == kNoPage) return Status::OK();
  uint32_t page = root_;
  while (true) {
    MMDB_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(file_->id(), page));
    ++stats_.node_visits;
    NodeView node = View(ref.data());
    if (!node.is_leaf()) {
      int lo = 0, hi = node.count();
      while (lo < hi) {
        int mid = (lo + hi) / 2;
        if (Compare(node.InternalKey(mid), key) < 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      page = node.Child(lo);
      continue;
    }
    break;
  }
  int64_t emitted = 0;
  bool first_leaf = true;
  while (page != kNoPage) {
    MMDB_ASSIGN_OR_RETURN(auto ref,
                          pool_->Fetch(file_->id(), page, IoKind::kSequential));
    ++stats_.node_visits;
    NodeView node = View(ref.data());
    int start = 0;
    if (first_leaf) {
      start = LowerBoundLeaf(node, key);
      first_leaf = false;
    }
    for (int i = start; i < node.count(); ++i) {
      if (limit >= 0 && emitted >= limit) return Status::OK();
      const char* entry = node.LeafEntry(i);
      if (!fn(entry, entry + key_width_)) return Status::OK();
      ++emitted;
    }
    page = node.next_leaf();
  }
  return Status::OK();
}

StatusOr<double> BPlusTree::AvgLeafFill() {
  if (root_ == kNoPage) return 0.0;
  // Walk the leaf chain from the leftmost leaf.
  uint32_t page = root_;
  while (true) {
    MMDB_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(file_->id(), page));
    NodeView node = View(ref.data());
    if (node.is_leaf()) break;
    page = node.Child(0);
  }
  int64_t leaves = 0, entries = 0;
  while (page != kNoPage) {
    MMDB_ASSIGN_OR_RETURN(auto ref,
                          pool_->Fetch(file_->id(), page, IoKind::kSequential));
    NodeView node = View(ref.data());
    ++leaves;
    entries += node.count();
    page = node.next_leaf();
  }
  if (leaves == 0) return 0.0;
  return double(entries) / (double(leaves) * leaf_capacity_);
}

StatusOr<double> BPlusTree::AvgInternalFill() {
  if (root_ == kNoPage || height_ == 1) return 0.0;
  int64_t nodes = 0, children = 0;
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    uint32_t page = stack.back();
    stack.pop_back();
    MMDB_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(file_->id(), page));
    NodeView node = View(ref.data());
    if (node.is_leaf()) continue;
    ++nodes;
    children += node.count() + 1;
    for (int i = 0; i <= node.count(); ++i) {
      // Only push non-leaf children to avoid flooding the pool with leaves.
      stack.push_back(node.Child(i));
    }
  }
  if (nodes == 0) return 0.0;
  return double(children) / (double(nodes) * max_fanout_);
}

Status BPlusTree::ValidateRec(uint32_t page_no, int depth, const char* lo,
                              const char* hi, int64_t* entries,
                              int* leaf_depth) {
  MMDB_ASSIGN_OR_RETURN(auto ref, pool_->Fetch(file_->id(), page_no));
  NodeView node = View(ref.data());
  const size_t kw = static_cast<size_t>(key_width_);
  if (node.is_leaf()) {
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Internal("leaves at differing depths");
    }
    for (int i = 0; i < node.count(); ++i) {
      const char* k = node.LeafEntry(i);
      if (i > 0 && std::memcmp(node.LeafEntry(i - 1), k, kw) > 0) {
        return Status::Internal("leaf keys out of order");
      }
      if (lo != nullptr && std::memcmp(k, lo, kw) < 0) {
        return Status::Internal("leaf key below lower bound");
      }
      if (hi != nullptr && std::memcmp(k, hi, kw) > 0) {
        return Status::Internal("leaf key above upper bound");
      }
    }
    *entries += node.count();
    return Status::OK();
  }
  const int n = node.count();
  if (n < 1) return Status::Internal("internal node with no keys");
  std::vector<std::vector<char>> keys;
  std::vector<uint32_t> children;
  for (int i = 0; i < n; ++i) {
    keys.emplace_back(node.InternalKey(i), node.InternalKey(i) + key_width_);
    if (i > 0 && std::memcmp(keys[static_cast<size_t>(i - 1)].data(),
                             keys[static_cast<size_t>(i)].data(), kw) > 0) {
      return Status::Internal("internal keys out of order");
    }
  }
  for (int i = 0; i <= n; ++i) children.push_back(node.Child(i));
  ref.Release();  // don't hold pins across the whole recursion

  for (int i = 0; i <= n; ++i) {
    const char* child_lo = i == 0 ? lo : keys[static_cast<size_t>(i - 1)].data();
    const char* child_hi = i == n ? hi : keys[static_cast<size_t>(i)].data();
    MMDB_RETURN_IF_ERROR(ValidateRec(children[static_cast<size_t>(i)],
                                     depth + 1, child_lo, child_hi, entries,
                                     leaf_depth));
  }
  return Status::OK();
}

Status BPlusTree::ValidateInvariants() {
  if (root_ == kNoPage) {
    if (size_ != 0) return Status::Internal("size nonzero with no root");
    return Status::OK();
  }
  int64_t entries = 0;
  int leaf_depth = -1;
  MMDB_RETURN_IF_ERROR(
      ValidateRec(root_, 1, nullptr, nullptr, &entries, &leaf_depth));
  if (entries != size_) {
    return Status::Internal("entry count mismatch vs size()");
  }
  if (leaf_depth != height_) {
    return Status::Internal("height field inconsistent with leaf depth");
  }
  return Status::OK();
}

void BPlusTree::EncodeInt64Key(int64_t v, char* out, int32_t k) {
  MMDB_CHECK_MSG(v >= 0, "int64 B+-tree keys must be non-negative");
  uint64_t u = static_cast<uint64_t>(v);
  if (k < 8) {
    MMDB_CHECK_MSG(k >= 1 && (u >> (8 * k)) == 0, "key does not fit width");
  }
  std::memset(out, 0, static_cast<size_t>(k));
  const int bytes = k < 8 ? k : 8;
  for (int i = 0; i < bytes; ++i) {
    out[k - 1 - i] = static_cast<char>((u >> (8 * i)) & 0xFF);
  }
}

void BPlusTree::EncodeStringKey(std::string_view s, char* out, int32_t k) {
  std::memset(out, 0, static_cast<size_t>(k));
  std::memcpy(out, s.data(), std::min<size_t>(s.size(), static_cast<size_t>(k)));
}

}  // namespace mmdb
