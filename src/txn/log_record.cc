#include "txn/log_record.h"

#include <cstring>

#include "common/crc32.h"

namespace mmdb {

namespace {

constexpr uint32_t kMagic = 0x4C52444Du;  // "MDRL"

template <typename T>
void AppendPod(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadPod(const char* data, int64_t size, int64_t* pos, T* out) {
  if (*pos + static_cast<int64_t>(sizeof(T)) > size) return false;
  std::memcpy(out, data + *pos, sizeof(T));
  *pos += static_cast<int64_t>(sizeof(T));
  return true;
}

}  // namespace

std::string_view LogRecordTypeName(LogRecordType t) {
  switch (t) {
    case LogRecordType::kBegin:
      return "BEGIN";
    case LogRecordType::kUpdate:
      return "UPDATE";
    case LogRecordType::kCommit:
      return "COMMIT";
    case LogRecordType::kAbort:
      return "ABORT";
    case LogRecordType::kCheckpoint:
      return "CHECKPOINT";
  }
  return "UNKNOWN";
}

int64_t LogRecord::SerializedSize() const {
  // magic(4) crc(4) type(1) txn(8) lsn(8) record_id(8) old_len(4) new_len(4)
  return 4 + 4 + 1 + 8 + 8 + 8 + 4 + 4 +
         static_cast<int64_t>(old_value.size()) +
         static_cast<int64_t>(new_value.size());
}

void LogRecord::AppendTo(std::string* out) const {
  AppendPod(out, kMagic);
  const size_t crc_pos = out->size();
  AppendPod(out, uint32_t{0});  // patched below
  const size_t body_pos = out->size();
  AppendPod(out, static_cast<uint8_t>(type));
  AppendPod(out, txn_id);
  AppendPod(out, lsn);
  AppendPod(out, record_id);
  AppendPod(out, static_cast<uint32_t>(old_value.size()));
  AppendPod(out, static_cast<uint32_t>(new_value.size()));
  out->append(old_value);
  out->append(new_value);
  const uint32_t crc =
      Crc32c(out->data() + body_pos, out->size() - body_pos);
  std::memcpy(out->data() + crc_pos, &crc, sizeof(crc));
}

StatusOr<LogRecord> LogRecord::Parse(const char* data, int64_t size,
                                     int64_t* consumed) {
  int64_t pos = 0;
  uint32_t magic;
  uint32_t stored_crc;
  if (!ReadPod(data, size, &pos, &magic) ||
      !ReadPod(data, size, &pos, &stored_crc)) {
    return Status::OutOfRange("truncated record");
  }
  if (magic != kMagic) return Status::InvalidArgument("bad log magic");
  const int64_t body_pos = pos;
  LogRecord rec;
  uint8_t type;
  uint32_t old_len, new_len;
  if (!ReadPod(data, size, &pos, &type) ||
      !ReadPod(data, size, &pos, &rec.txn_id) ||
      !ReadPod(data, size, &pos, &rec.lsn) ||
      !ReadPod(data, size, &pos, &rec.record_id) ||
      !ReadPod(data, size, &pos, &old_len) ||
      !ReadPod(data, size, &pos, &new_len)) {
    return Status::OutOfRange("truncated record header");
  }
  if (pos + old_len + new_len > size) {
    return Status::OutOfRange("truncated record payload");
  }
  const int64_t end = pos + old_len + new_len;
  const uint32_t actual_crc =
      Crc32c(data + body_pos, static_cast<size_t>(end - body_pos));
  if (actual_crc != stored_crc) {
    return Status::Corruption("log record checksum mismatch");
  }
  rec.type = static_cast<LogRecordType>(type);
  rec.old_value.assign(data + pos, old_len);
  pos += old_len;
  rec.new_value.assign(data + pos, new_len);
  pos += new_len;
  *consumed = pos;
  return rec;
}

namespace {

/// Finds the next offset in [from, size) where a complete, checksum-valid
/// record parses; -1 if none. Used to resynchronize past damage.
int64_t FindNextValidRecord(const char* data, int64_t size, int64_t from) {
  for (int64_t pos = from; pos + 8 <= size; ++pos) {
    if (static_cast<unsigned char>(data[pos]) != (kMagic & 0xFFu)) continue;
    uint32_t magic;
    std::memcpy(&magic, data + pos, sizeof(magic));
    if (magic != kMagic) continue;
    int64_t consumed = 0;
    if (LogRecord::Parse(data + pos, size - pos, &consumed).ok()) return pos;
  }
  return -1;
}

}  // namespace

std::vector<LogRecord> LogRecord::ParseAll(const char* data, int64_t size,
                                           LogParseStats* stats) {
  std::vector<LogRecord> out;
  int64_t pos = 0;
  while (pos < size) {
    // Skip zero padding between page boundaries.
    if (data[pos] == '\0') {
      ++pos;
      continue;
    }
    int64_t consumed = 0;
    StatusOr<LogRecord> rec = Parse(data + pos, size - pos, &consumed);
    if (!rec.ok()) {
      // Damage. A torn tail and a mid-stream corrupt record look alike
      // from here (a flipped length field also reads as "truncated"), so
      // decide by whether any later bytes still parse as a valid record.
      int64_t next = FindNextValidRecord(data, size, pos + 1);
      if (next < 0) {
        if (stats != nullptr) stats->torn_tail_bytes += size - pos;
        break;
      }
      if (stats != nullptr) ++stats->corrupt_skipped;
      pos = next;
      continue;
    }
    out.push_back(std::move(rec).value());
    if (stats != nullptr) ++stats->records;
    pos += consumed;
  }
  return out;
}

LogRecord LogRecord::CompressForDisk() const {
  LogRecord out = *this;
  out.old_value.clear();
  return out;
}

}  // namespace mmdb
