#ifndef MMDB_STORAGE_PAGE_H_
#define MMDB_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace mmdb {

/// A fixed-size-record data page:
///
///   +---------------------------+
///   | uint32 record_count       |  8-byte header (4 reserved)
///   +---------------------------+
///   | record 0 | record 1 | ... |  record_size bytes each
///   +---------------------------+
///
/// mmdb records are fixed width (Schema::record_size), so a slot directory
/// is unnecessary; records pack densely and capacity is
/// (page_size - kHeaderSize) / record_size — the paper's "tuples per page".
class Page {
 public:
  static constexpr int64_t kHeaderSize = 8;

  /// Wraps an external page-sized buffer; does not own it.
  Page(char* data, int64_t page_size, int32_t record_size)
      : data_(data), page_size_(page_size), record_size_(record_size) {
    MMDB_DCHECK(record_size > 0);
    MMDB_DCHECK(page_size >= kHeaderSize + record_size);
  }

  /// Max records a page of this geometry holds.
  static int32_t Capacity(int64_t page_size, int32_t record_size) {
    return static_cast<int32_t>((page_size - kHeaderSize) / record_size);
  }

  int32_t capacity() const { return Capacity(page_size_, record_size_); }

  int32_t record_count() const {
    uint32_t n;
    std::memcpy(&n, data_, sizeof(n));
    return static_cast<int32_t>(n);
  }

  bool Full() const { return record_count() >= capacity(); }

  /// Zeroes the header (count = 0).
  void Init() { std::memset(data_, 0, kHeaderSize); }

  /// Appends one record; fails with kResourceExhausted when full.
  Status Append(const char* record) {
    int32_t n = record_count();
    if (n >= capacity()) return Status::ResourceExhausted("page full");
    std::memcpy(RecordPtr(n), record, static_cast<size_t>(record_size_));
    SetCount(n + 1);
    return Status::OK();
  }

  /// Pointer to record `i` (0-based). Precondition: i < record_count().
  const char* Record(int32_t i) const {
    MMDB_DCHECK(i >= 0 && i < record_count());
    return RecordPtr(i);
  }
  char* MutableRecord(int32_t i) {
    MMDB_DCHECK(i >= 0 && i < record_count());
    return RecordPtr(i);
  }

  char* raw() { return data_; }
  const char* raw() const { return data_; }

 private:
  char* RecordPtr(int32_t i) const {
    return data_ + kHeaderSize + static_cast<int64_t>(i) * record_size_;
  }
  void SetCount(int32_t n) {
    uint32_t u = static_cast<uint32_t>(n);
    std::memcpy(data_, &u, sizeof(u));
  }

  char* data_;
  int64_t page_size_;
  int32_t record_size_;
};

}  // namespace mmdb

#endif  // MMDB_STORAGE_PAGE_H_
