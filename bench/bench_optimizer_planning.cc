// Reproduces §4's access-planning argument: with a large memory,
// query optimization "is reduced to simply ordering the operators so that
// the most selective operations are pushed towards the bottom of the
// query tree", because hash algorithms win everywhere and are insensitive
// to input order.
//
// We optimize a 4-table star query under shrinking memory grants and
// report (a) which join algorithms the classical W*CPU+IO search picks,
// and (b) the cost gap between the full search and the §4-reduced planner
// (hybrid-hash only, no interesting orders). At large |M| the gap is zero.

#include <cstdio>

#include "optimizer/executor.h"
#include "optimizer/optimizer.h"
#include "storage/datagen.h"

namespace mmdb {
namespace {

void CountAlgorithms(const PlanNode& node, int counts[5]) {
  if (node.kind == PlanNode::Kind::kJoin) {
    ++counts[static_cast<int>(node.algorithm)];
  }
  if (node.child_left) CountAlgorithms(*node.child_left, counts);
  if (node.child_right) CountAlgorithms(*node.child_right, counts);
}

}  // namespace
}  // namespace mmdb

int main() {
  using namespace mmdb;

  // A star: facts(1e5) -> dim_a(1e4), dim_b(1e3), dim_c(100).
  Catalog catalog(4096);
  Random rng(13);
  Relation dim_a(Schema({Column::Int64("a_id"), Column::Char("pad", 92)}));
  for (int64_t i = 0; i < 10'000; ++i) dim_a.Add({i, std::string()});
  Relation dim_b(Schema({Column::Int64("b_id"), Column::Char("pad", 92)}));
  for (int64_t i = 0; i < 1'000; ++i) dim_b.Add({i, std::string()});
  Relation dim_c(Schema({Column::Int64("c_id"), Column::Char("pad", 92)}));
  for (int64_t i = 0; i < 100; ++i) dim_c.Add({i, std::string()});
  Relation facts(Schema({Column::Int64("f_id"), Column::Int64("a"),
                         Column::Int64("b"), Column::Int64("c"),
                         Column::Int64("v")}));
  for (int64_t i = 0; i < 100'000; ++i) {
    facts.Add({i, static_cast<int64_t>(rng.Uniform(10'000)),
               static_cast<int64_t>(rng.Uniform(1'000)),
               static_cast<int64_t>(rng.Uniform(100)),
               static_cast<int64_t>(rng.Uniform(1000))});
  }
  MMDB_CHECK(catalog.RegisterTable("facts", &facts).ok());
  MMDB_CHECK(catalog.RegisterTable("dim_a", &dim_a).ok());
  MMDB_CHECK(catalog.RegisterTable("dim_b", &dim_b).ok());
  MMDB_CHECK(catalog.RegisterTable("dim_c", &dim_c).ok());

  Query q;
  q.tables = {"facts", "dim_a", "dim_b", "dim_c"};
  q.joins = {{ColumnRef{"facts", "a"}, ColumnRef{"dim_a", "a_id"}},
             {ColumnRef{"facts", "b"}, ColumnRef{"dim_b", "b_id"}},
             {ColumnRef{"facts", "c"}, ColumnRef{"dim_c", "c_id"}}};
  q.filters = {{"facts", "v", CmpOp::kLt, Value{int64_t{100}}}};

  std::printf("== §4 access planning: 4-table star, W*CPU + IO search vs "
              "the main-memory reduction ==\n\n");
  std::printf("%10s | %-38s | %12s | %12s | %s\n", "|M| pages",
              "algorithms picked by full search", "full cost(s)",
              "hash-only(s)", "gap");
  for (int64_t memory : {int64_t{20}, int64_t{60}, int64_t{200},
                         int64_t{1000}, int64_t{8000}}) {
    OptimizerOptions full_opts;
    full_opts.memory_pages = memory;
    Optimizer full(&catalog, full_opts);
    auto full_plan = full.Optimize(q);
    MMDB_CHECK(full_plan.ok());
    int counts[5] = {};
    CountAlgorithms(**full_plan, counts);
    char algs[128];
    std::snprintf(algs, sizeof(algs), "sm=%d simple=%d grace=%d hybrid=%d",
                  counts[1], counts[2], counts[3], counts[4]);

    OptimizerOptions reduced_opts = full_opts;
    reduced_opts.hash_only = true;
    Optimizer reduced(&catalog, reduced_opts);
    auto reduced_plan = reduced.Optimize(q);
    MMDB_CHECK(reduced_plan.ok());

    const double gap =
        ((*reduced_plan)->est_cost_seconds - (*full_plan)->est_cost_seconds) /
        std::max(1e-12, (*full_plan)->est_cost_seconds);
    std::printf("%10lld | %-38s | %12.3f | %12.3f | %+.1f%%\n",
                static_cast<long long>(memory), algs,
                (*full_plan)->est_cost_seconds,
                (*reduced_plan)->est_cost_seconds, gap * 100);
  }

  // Show one plan and execute it, proving selections sit at the bottom.
  OptimizerOptions opts;
  opts.memory_pages = 8000;
  Optimizer optimizer(&catalog, opts);
  auto plan = optimizer.Optimize(q);
  MMDB_CHECK(plan.ok());
  std::printf("\nchosen plan at |M|=8000 (selections pushed down, hybrid "
              "hash everywhere):\n%s\n",
              (*plan)->ToString().c_str());
  ExecEnv env(8000);
  auto result = ExecutePlan(**plan, catalog, &env.ctx);
  MMDB_CHECK(result.ok());
  std::printf("executed: %lld tuples, %.3f simulated seconds\n",
              static_cast<long long>(result->num_tuples()),
              env.clock.Seconds());
  std::printf("\npaper: \"query optimization is reduced to simply ordering "
              "the operators... there is only one algorithm to choose "
              "from\" — the gap column is ~0 once |M| is large.\n");
  return 0;
}
