#ifndef MMDB_EXEC_SETOPS_H_
#define MMDB_EXEC_SETOPS_H_

#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "exec/join.h"
#include "storage/relation.h"

namespace mmdb {

/// §3.9 observes that the hash techniques of §3 carry over to the other
/// relational operators ("aggregate functions, cross product, and
/// division"). This module supplies those operators: set union /
/// intersection / difference, semi- and anti-join, and relational division
/// — all hash-based, all spilling through the §3.3 partitioning machinery
/// when the inputs exceed |M| (a partition compatible with h splits every
/// one of these problems into independent sub-problems).

enum class SetOp { kUnion, kIntersect, kDifference };

std::string_view SetOpName(SetOp op);

/// Set-semantics UNION / INTERSECT / EXCEPT of two relations with
/// identical schemas (duplicates eliminated, as in SQL's set operators).
StatusOr<Relation> HashSetOp(SetOp op, const Relation& a, const Relation& b,
                             ExecContext* ctx);

/// Rows of `r` with at least one join partner in `s` (each emitted once).
StatusOr<Relation> HashSemiJoin(const Relation& r, const Relation& s,
                                const JoinSpec& spec, ExecContext* ctx);

/// Rows of `r` with NO join partner in `s`.
StatusOr<Relation> HashAntiJoin(const Relation& r, const Relation& s,
                                const JoinSpec& spec, ExecContext* ctx);

/// Relational division: r(group_columns ++ divisor_column) ÷ s.
/// Emits each distinct value combination of r's `group_columns` that
/// appears with EVERY value of s's `divisor_column`
/// (e.g. "students who passed every required course"). The divisor's
/// distinct values must fit in memory; the dividend is hash-partitioned on
/// the group columns when it does not fit.
StatusOr<Relation> HashDivision(const Relation& r,
                                const std::vector<int>& group_columns,
                                int divisor_column, const Relation& s,
                                int s_column, ExecContext* ctx);

}  // namespace mmdb

#endif  // MMDB_EXEC_SETOPS_H_
