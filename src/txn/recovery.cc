#include "txn/recovery.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace mmdb {

namespace {

/// Per-record resolution shared by blocking recovery and instant analysis.
/// With value (physical) logging the final state of a record is fully
/// determined by its update timeline:
///   * the NEW value of its latest winner update, unless
///   * a loser updated it after that winner — then the OLD value of the
///     EARLIEST such loser update (the committed image the loser
///     overwrote; locks guarantee no winner interleaved).
/// This rule is idempotent across crash epochs: a loser from a previous
/// epoch (which the log never seals) is automatically superseded by any
/// later winner on the same record instead of being re-undone over it.
struct RecordState {
  const LogRecord* winner = nullptr;       // latest winner update
  const LogRecord* loser_after = nullptr;  // earliest loser after it
  /// Indices (into the log vector) of every winner update, LSN order —
  /// the record's committed redo chain for the instant-recovery index.
  std::vector<int32_t> winner_chain;
  int32_t loser_index = -1;
};

/// Everything both recovery flavours extract from one pass over the log
/// and the snapshot load.
struct AnalysisResult {
  std::vector<LogRecord> log;
  std::unordered_map<int64_t, RecordState> final_state;
  std::unordered_set<int64_t> quarantined;
  std::vector<int64_t> quarantined_pages;
  bool fut_trusted = false;
  RecoveryStats stats;
};

/// Phases 1+2(+3a): snapshot load, log merge, winner classification and
/// per-record resolution. `keep_chains` additionally records each record's
/// full committed chain (instant recovery replays chains; blocking
/// recovery only needs the resolved endpoint).
StatusOr<AnalysisResult> AnalyzeLog(RecoverableStore* store, Wal* wal,
                                    FirstUpdateTable* fut,
                                    const RecoveryOptions& options,
                                    bool keep_chains) {
  AnalysisResult out;
  RecoveryStats& stats = out.stats;

  // 1. Snapshot reload. Pages that stay unreadable or fail their CRC are
  // quarantined (zero-filled); their contents are rebuilt from the log
  // below, so they must not take the first-update fast path.
  const RecoverableStore::Stats store_before = store->stats();
  MMDB_RETURN_IF_ERROR(store->LoadSnapshot(&out.quarantined_pages));
  stats.snapshot_pages_read =
      store->stats().snapshot_pages_read - store_before.snapshot_pages_read;
  stats.snapshot_pages_quarantined =
      static_cast<int64_t>(out.quarantined_pages.size());
  out.quarantined.insert(out.quarantined_pages.begin(),
                         out.quarantined_pages.end());

  // 2. Merge fragments, classify transactions. Checksum-failed records are
  // dropped by the parser (counted, never applied); a torn tail past the
  // last valid record is expected after a crash mid-flush.
  Wal::LogReadStats log_read;
  out.log = wal->ReadAllForRecovery(&log_read);
  stats.log_records_total = static_cast<int64_t>(out.log.size());
  stats.corrupt_records_skipped = log_read.corrupt_records_skipped;
  stats.torn_tail_bytes = log_read.torn_tail_bytes;
  stats.unreadable_log_pages = log_read.unreadable_pages;

  std::unordered_set<TxnId> winners;
  std::unordered_set<TxnId> seen;
  for (const LogRecord& rec : out.log) {
    seen.insert(rec.txn_id);
    if (rec.txn_id >= kSqlStmtTxnBase) {
      stats.max_sql_stmt_txn_id =
          std::max(stats.max_sql_stmt_txn_id, rec.txn_id);
    } else {
      stats.max_txn_id = std::max(stats.max_txn_id, rec.txn_id);
    }
    if (rec.type == LogRecordType::kCommit ||
        rec.type == LogRecordType::kAbort) {
      winners.insert(rec.txn_id);
    }
  }
  stats.winners = static_cast<int64_t>(winners.size());
  stats.losers = static_cast<int64_t>(seen.size()) - stats.winners;

  // 3a. Redo winners from the first-update boundary — but only if the
  // table survives its checksum check. A bit-flipped first-update LSN
  // could silently skip redo, so on mismatch the table is abandoned and
  // the whole log replayed (degraded mode: slow but safe).
  out.fut_trusted =
      options.use_first_update_table && fut != nullptr && fut->Verify();
  if (options.use_first_update_table && fut != nullptr && !out.fut_trusted) {
    stats.degraded_mode = true;
  }
  if (!out.quarantined.empty()) stats.degraded_mode = true;
  Lsn start = 0;
  if (out.fut_trusted) {
    const Lsn min_lsn = fut->MinLsn();
    start = min_lsn == kInvalidLsn
                ? std::numeric_limits<Lsn>::max()  // everything checkpointed
                : min_lsn;
    // Quarantined pages lost their snapshot image: every surviving update
    // to them must replay, so the scan cannot start past the log head.
    if (!out.quarantined.empty()) start = 0;
  }
  stats.start_lsn = start;

  int64_t scanned_bytes = 0;
  for (int32_t i = 0; i < static_cast<int32_t>(out.log.size()); ++i) {
    const LogRecord& rec = out.log[static_cast<size_t>(i)];
    if (rec.lsn >= start) {
      ++stats.log_records_scanned;
      scanned_bytes += rec.SerializedSize();
    }
    if (rec.type != LogRecordType::kUpdate) continue;
    RecordState& state = out.final_state[rec.record_id];
    if (winners.count(rec.txn_id)) {
      state.winner = &rec;  // later winner supersedes
      state.loser_after = nullptr;
      state.loser_index = -1;
      if (keep_chains) state.winner_chain.push_back(i);
    } else if (state.loser_after == nullptr) {
      if (rec.old_value.empty() && !rec.new_value.empty()) {
        // A compressed record can only belong to a committed txn;
        // in-flight stable areas always retain their undo images.
        return Status::Internal("loser update lacks undo image");
      }
      state.loser_after = &rec;  // first in-flight overwrite after winner
      state.loser_index = i;
    }
  }
  // Price the log scan as sequential 4K-page reads at the paper's 10 ms.
  stats.simulated_log_read_seconds =
      double((scanned_bytes + 4095) / 4096) * 0.010;
  // Transient I/O retried so far (snapshot load + log read); the caller
  // adds retries from its own apply/checkpoint phase.
  stats.retries = log_read.retries +
                  (store->stats().io_retries - store_before.io_retries);
  return out;
}

/// True when `state`'s resolved redo may be skipped: the record's latest
/// committed update predates its page's first un-checkpointed update, so
/// the snapshot already holds it (and the page was not quarantined).
bool SkipByFirstUpdate(const AnalysisResult& analysis,
                       const RecordState& state, int64_t page,
                       FirstUpdateTable* fut) {
  if (!analysis.fut_trusted || analysis.quarantined.count(page)) return false;
  const Lsn page_first = fut->Get(page);
  return page_first == kInvalidLsn || state.winner->lsn < page_first;
}

}  // namespace

StatusOr<RecoveryStats> RecoverStore(RecoverableStore* store, Wal* wal,
                                     FirstUpdateTable* fut,
                                     RecoveryOptions options) {
  const auto t0 = std::chrono::steady_clock::now();
  MMDB_ASSIGN_OR_RETURN(
      AnalysisResult analysis,
      AnalyzeLog(store, wal, fut, options, /*keep_chains=*/false));
  RecoveryStats stats = analysis.stats;
  const int64_t io_retries_before_apply = store->stats().io_retries;

  // 3b/4. Apply each record's resolved endpoint: undo beats redo, redo is
  // page-precise against the first-update table.
  for (const auto& [record_id, state] : analysis.final_state) {
    if (state.loser_after != nullptr) {
      if (options.replay_latency.count() > 0) {
        std::this_thread::sleep_for(options.replay_latency);
      }
      MMDB_RETURN_IF_ERROR(store->ApplyRecovery(
          record_id, state.loser_after->old_value, state.loser_after->lsn));
      ++stats.undo_applied;
    } else if (state.winner != nullptr) {
      const int64_t page = store->PageOf(record_id);
      if (SkipByFirstUpdate(analysis, state, page, fut)) {
        // Page-precise skip: updates older than the page's first-update
        // entry are guaranteed to be in the snapshot already. Quarantined
        // pages were zero-filled, so nothing is "already there" for them.
        continue;
      }
      if (options.replay_latency.count() > 0) {
        std::this_thread::sleep_for(options.replay_latency);
      }
      MMDB_RETURN_IF_ERROR(store->ApplyRecovery(
          record_id, state.winner->new_value, state.winner->lsn));
      ++stats.redo_applied;
    }
  }

  // Quarantined pages were rebuilt (or zero-filled) from the log rather
  // than loaded from the snapshot. Stamp them with the log's end LSN so an
  // incremental backup taken after this restart still treats them as
  // changed — their content no longer matches any earlier backup of the
  // same page.
  if (!analysis.quarantined.empty() && !analysis.log.empty()) {
    const Lsn heal_lsn = analysis.log.back().lsn;
    for (int64_t page : analysis.quarantined) {
      store->StampPageLsn(page, heal_lsn);
    }
  }

  // End-of-recovery checkpoint: persist the recovered image so a second
  // crash before the next sweep cannot lose redone work, then clear any
  // remaining (now meaningless) first-update entries. Quarantined pages are
  // rewritten even when no redo touched them — the successful full write
  // heals the bad sector (remap) and restores a valid checksum, so the next
  // load will not re-quarantine them.
  std::unordered_set<int64_t> to_checkpoint(analysis.quarantined.begin(),
                                            analysis.quarantined.end());
  for (int64_t page : store->DirtyPages()) to_checkpoint.insert(page);
  for (int64_t page : to_checkpoint) {
    MMDB_RETURN_IF_ERROR(store->CheckpointPage(page, fut, nullptr));
  }
  if (fut != nullptr) {
    if (analysis.fut_trusted) {
      for (int64_t p = 0; p < fut->num_pages(); ++p) fut->ResetPage(p);
    } else {
      // A corrupted table cannot be repaired incrementally — rebuild it.
      fut->Clear();
    }
  }

  stats.retries += store->stats().io_retries - io_retries_before_apply;

  const auto t1 = std::chrono::steady_clock::now();
  stats.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  return stats;
}

StatusOr<std::unordered_map<int64_t, ResolvedUpdate>> ResolveLogWindow(
    const std::vector<LogRecord>& log, Lsn cut_lsn) {
  // The same §5 rule AnalyzeLog applies at restart, over an arbitrary
  // window and with the winner set truncated at `cut_lsn`: a transaction
  // whose commit/abort record lies at or beyond the cut never happened as
  // far as the restored image is concerned, so its updates roll back to
  // their old values.
  std::unordered_set<TxnId> winners;
  for (const LogRecord& rec : log) {
    if (rec.lsn >= cut_lsn) break;  // log is LSN-sorted
    if (rec.type == LogRecordType::kCommit ||
        rec.type == LogRecordType::kAbort) {
      winners.insert(rec.txn_id);
    }
  }
  struct State {
    const LogRecord* winner = nullptr;
    const LogRecord* loser_after = nullptr;
  };
  std::unordered_map<int64_t, State> by_record;
  for (const LogRecord& rec : log) {
    if (rec.lsn >= cut_lsn) break;
    if (rec.type != LogRecordType::kUpdate) continue;
    State& state = by_record[rec.record_id];
    if (winners.count(rec.txn_id)) {
      state.winner = &rec;
      state.loser_after = nullptr;
    } else if (state.loser_after == nullptr) {
      if (rec.old_value.empty() && !rec.new_value.empty()) {
        return Status::Internal("loser update lacks undo image");
      }
      state.loser_after = &rec;
    }
  }
  std::unordered_map<int64_t, ResolvedUpdate> out;
  out.reserve(by_record.size());
  for (const auto& [record_id, state] : by_record) {
    if (state.loser_after != nullptr) {
      out.emplace(record_id,
                  ResolvedUpdate{state.loser_after->old_value,
                                 state.loser_after->lsn});
    } else if (state.winner != nullptr) {
      out.emplace(record_id, ResolvedUpdate{state.winner->new_value,
                                            state.winner->lsn});
    }
  }
  return out;
}

StatusOr<InstantRecoveryPlan> AnalyzeInstantRecovery(RecoverableStore* store,
                                                     Wal* wal,
                                                     FirstUpdateTable* fut,
                                                     RecoveryOptions options) {
  const auto t0 = std::chrono::steady_clock::now();
  MMDB_ASSIGN_OR_RETURN(
      AnalysisResult analysis,
      AnalyzeLog(store, wal, fut, options, /*keep_chains=*/true));

  InstantRecoveryPlan plan;
  plan.stats = analysis.stats;
  plan.quarantined_pages = std::move(analysis.quarantined_pages);

  // Build the log index: one chain per record with outstanding work. A
  // record whose resolved redo the first-update table proves is already in
  // the snapshot gets NO chain — it is restored the moment the snapshot
  // loads, exactly as in blocking recovery.
  struct OrderKey {
    Lsn first_lsn;
    int64_t record_id;
  };
  std::vector<OrderKey> order;
  for (auto& [record_id, state] : analysis.final_state) {
    InstantRecoveryPlan::Chain chain;
    if (state.loser_after != nullptr) {
      // The loser's old_value IS the committed image (it embeds every
      // winner before it, and locks guarantee no winner after it), so the
      // redo chain is redundant: one undo write restores the record.
      chain.undo = state.loser_index;
    } else if (state.winner != nullptr) {
      const int64_t page = store->PageOf(record_id);
      if (SkipByFirstUpdate(analysis, state, page, fut)) continue;
      chain.redo = std::move(state.winner_chain);
    } else {
      continue;  // only loser updates BEFORE a winner — nothing pending
    }
    const Lsn first_lsn =
        !chain.redo.empty()
            ? analysis.log[static_cast<size_t>(chain.redo.front())].lsn
            : analysis.log[static_cast<size_t>(chain.undo)].lsn;
    order.push_back(OrderKey{first_lsn, record_id});
    plan.pending.emplace(record_id, std::move(chain));
  }
  std::sort(order.begin(), order.end(), [](const OrderKey& a,
                                           const OrderKey& b) {
    return a.first_lsn != b.first_lsn ? a.first_lsn < b.first_lsn
                                      : a.record_id < b.record_id;
  });
  plan.sweep_order.reserve(order.size());
  for (const OrderKey& k : order) plan.sweep_order.push_back(k.record_id);
  plan.log = std::move(analysis.log);
  plan.stats.pending_records = static_cast<int64_t>(plan.pending.size());

  const auto t1 = std::chrono::steady_clock::now();
  plan.stats.analysis_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  plan.stats.wall_seconds = plan.stats.analysis_seconds;
  return plan;
}

}  // namespace mmdb
