#include "index/avl_tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"

namespace mmdb {
namespace {

TEST(AvlTreeTest, InsertFindBasics) {
  AvlTree tree;
  tree.Insert(Value{int64_t{5}}, 50);
  tree.Insert(Value{int64_t{3}}, 30);
  tree.Insert(Value{int64_t{8}}, 80);
  EXPECT_EQ(tree.size(), 3);
  EXPECT_EQ(*tree.Find(Value{int64_t{3}}), 30);
  EXPECT_EQ(*tree.Find(Value{int64_t{8}}), 80);
  EXPECT_EQ(tree.Find(Value{int64_t{9}}).status().code(),
            StatusCode::kNotFound);
}

TEST(AvlTreeTest, StringKeys) {
  AvlTree tree;
  tree.Insert(Value{std::string("jones")}, 1);
  tree.Insert(Value{std::string("smith")}, 2);
  EXPECT_EQ(*tree.Find(Value{std::string("jones")}), 1);
  ASSERT_TRUE(tree.ValidateInvariants().ok());
}

TEST(AvlTreeTest, SequentialInsertStaysBalanced) {
  AvlTree tree;
  constexpr int64_t kN = 4096;
  for (int64_t i = 0; i < kN; ++i) {
    tree.Insert(Value{i}, i);
  }
  ASSERT_TRUE(tree.ValidateInvariants().ok());
  // AVL height bound: < 1.4405 log2(n+2).
  EXPECT_LE(tree.height(), static_cast<int>(1.4405 * std::log2(kN + 2)) + 1);
}

TEST(AvlTreeTest, DeleteRebalancesAndRemoves) {
  AvlTree tree;
  for (int64_t i = 0; i < 200; ++i) tree.Insert(Value{i}, i);
  for (int64_t i = 0; i < 200; i += 2) {
    ASSERT_TRUE(tree.Delete(Value{i}).ok()) << i;
  }
  ASSERT_TRUE(tree.ValidateInvariants().ok());
  EXPECT_EQ(tree.size(), 100);
  for (int64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(tree.Find(Value{i}).ok(), i % 2 == 1) << i;
  }
  EXPECT_EQ(tree.Delete(Value{int64_t{0}}).code(), StatusCode::kNotFound);
}

TEST(AvlTreeTest, DuplicatesAllFoundByScan) {
  AvlTree tree;
  for (int i = 0; i < 5; ++i) tree.Insert(Value{int64_t{7}}, 100 + i);
  tree.Insert(Value{int64_t{6}}, 1);
  tree.Insert(Value{int64_t{8}}, 2);
  std::multiset<int64_t> payloads;
  tree.ScanFrom(Value{int64_t{7}}, [&](const Value& k, int64_t p) {
    if (std::get<int64_t>(k) != 7) return false;
    payloads.insert(p);
    return true;
  });
  EXPECT_EQ(payloads.size(), 5u);
  ASSERT_TRUE(tree.ValidateInvariants().ok());
}

TEST(AvlTreeTest, ScanFromStartsAtLowerBoundInOrder) {
  AvlTree tree;
  for (int64_t i = 0; i < 100; i += 2) tree.Insert(Value{i}, i);
  std::vector<int64_t> seen;
  tree.ScanFrom(
      Value{int64_t{31}},
      [&](const Value& k, int64_t) {
        seen.push_back(std::get<int64_t>(k));
        return true;
      },
      5);
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen, (std::vector<int64_t>{32, 34, 36, 38, 40}));
}

TEST(AvlTreeTest, ComparisonsMatchPaperModel) {
  // §2: finding a tuple needs ~log2(n) + 0.25 comparisons.
  AvlTree tree;
  constexpr int64_t kN = 8192;
  Random rng(5);
  std::vector<int64_t> keys(kN);
  for (int64_t i = 0; i < kN; ++i) keys[size_t(i)] = i;
  rng.Shuffle(&keys);
  for (int64_t k : keys) tree.Insert(Value{k}, k);

  tree.ResetStats();
  constexpr int kLookups = 2000;
  for (int i = 0; i < kLookups; ++i) {
    ASSERT_TRUE(tree.Find(Value{keys[rng.Uniform(kN)]}).ok());
  }
  const double avg_comparisons =
      double(tree.stats().comparisons) / kLookups;
  const double model = std::log2(double(kN)) + 0.25;
  EXPECT_NEAR(avg_comparisons, model, 1.5);
}

TEST(AvlTreeTest, FaultSimulationMatchesPaperModel) {
  // §2: faults per lookup = C * (1 - |M|/S) under random replacement.
  AvlTree tree;
  constexpr int64_t kN = 8192;
  Random rng(6);
  std::vector<int64_t> keys(kN);
  for (int64_t i = 0; i < kN; ++i) keys[size_t(i)] = i;
  rng.Shuffle(&keys);
  for (int64_t k : keys) tree.Insert(Value{k}, k);

  constexpr int64_t kPages = 512;
  constexpr int64_t kMemory = 256;  // half resident
  tree.ConfigurePaging(kPages, kMemory);
  // Warm the resident set, then measure.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Find(Value{keys[rng.Uniform(kN)]}).ok());
  }
  tree.ResetStats();
  constexpr int kLookups = 2000;
  for (int i = 0; i < kLookups; ++i) {
    ASSERT_TRUE(tree.Find(Value{keys[rng.Uniform(kN)]}).ok());
  }
  const double avg_faults = double(tree.stats().page_faults) / kLookups;
  const double c = std::log2(double(kN)) + 0.25;
  const double model = c * (1.0 - double(kMemory) / double(kPages));
  // The paper's C*(1 - |M|/S) assumes every visited page is uniformly
  // random. Real traversals hit the hot upper levels every time, so the
  // model is a (fairly loose) UPPER bound — an interesting reproduction
  // finding recorded in EXPERIMENTS.md. The deep-node visits still fault
  // at ~(1 - |M|/S), so a substantial fraction of the model must appear.
  EXPECT_LE(avg_faults, model * 1.05);
  EXPECT_GE(avg_faults, model * 0.3);
}

TEST(AvlTreeTest, SubtreePagingReducesFaultsLikeFanout) {
  // The footnoted paged-binary-tree layout: clustering subtrees onto pages
  // turns ~log2(n) page touches per lookup into ~log_c(n) where c is the
  // per-page fanout — approaching B+-tree behaviour.
  AvlTree scattered, clustered;
  constexpr int64_t kN = 8192;
  Random rng(3);
  std::vector<int64_t> keys(kN);
  for (int64_t i = 0; i < kN; ++i) keys[size_t(i)] = i;
  rng.Shuffle(&keys);
  for (int64_t k : keys) {
    scattered.Insert(Value{k}, k);
    clustered.Insert(Value{k}, k);
  }
  constexpr int32_t kNodesPerPage = 31;  // ~5 levels per page
  // A couple of resident frames so that consecutive same-page node visits
  // hit — that intra-path locality is precisely what clustering buys.
  const int64_t pages = clustered.ConfigureSubtreePaging(kNodesPerPage,
                                                         /*memory=*/2);
  EXPECT_GE(pages, kN / kNodesPerPage);
  scattered.ConfigurePaging(pages, /*memory=*/2);

  for (int i = 0; i < 1000; ++i) {
    const Value key{keys[rng.Uniform(kN)]};
    ASSERT_TRUE(scattered.Find(key).ok());
    ASSERT_TRUE(clustered.Find(key).ok());
  }
  // Scattered: ~log2(n) distinct pages per lookup. Clustered:
  // ~log2(n)/log2(nodes_per_page) + 1 — a B+-tree-like page count.
  EXPECT_LT(clustered.stats().page_faults * 2,
            scattered.stats().page_faults);
}

TEST(AvlTreeTest, SubtreePagingCoversEveryNodeExactlyOnce) {
  AvlTree tree;
  for (int64_t i = 0; i < 1000; ++i) tree.Insert(Value{i}, i);
  const int64_t pages = tree.ConfigureSubtreePaging(10, 0);
  // 1000 nodes at <=10 per page: at least 100 pages, and every lookup
  // still succeeds (assignment covers the whole tree).
  EXPECT_GE(pages, 100);
  for (int64_t i = 0; i < 1000; i += 37) {
    EXPECT_TRUE(tree.Find(Value{i}).ok());
  }
  ASSERT_TRUE(tree.ValidateInvariants().ok());
}

struct RandomOpsParam {
  uint64_t seed;
  int ops;
};

class AvlRandomOpsTest : public ::testing::TestWithParam<RandomOpsParam> {};

TEST_P(AvlRandomOpsTest, InvariantsHoldUnderRandomWorkload) {
  // Property test: after every batch of random inserts/deletes, the tree
  // matches a reference multiset and its structural invariants.
  const RandomOpsParam param = GetParam();
  Random rng(param.seed);
  AvlTree tree;
  std::multiset<int64_t> reference;
  for (int op = 0; op < param.ops; ++op) {
    const int64_t key = static_cast<int64_t>(rng.Uniform(200));
    if (rng.Bernoulli(0.6)) {
      tree.Insert(Value{key}, key);
      reference.insert(key);
    } else {
      const bool present = reference.count(key) > 0;
      const Status s = tree.Delete(Value{key});
      EXPECT_EQ(s.ok(), present);
      if (present) reference.erase(reference.find(key));
    }
    if (op % 64 == 0) {
      ASSERT_TRUE(tree.ValidateInvariants().ok()) << "op " << op;
    }
  }
  ASSERT_TRUE(tree.ValidateInvariants().ok());
  EXPECT_EQ(tree.size(), static_cast<int64_t>(reference.size()));
  // Full in-order scan equals the sorted reference.
  std::vector<int64_t> scanned;
  tree.ScanFrom(Value{int64_t{-1}}, [&](const Value& k, int64_t) {
    scanned.push_back(std::get<int64_t>(k));
    return true;
  });
  std::vector<int64_t> expected(reference.begin(), reference.end());
  EXPECT_EQ(scanned, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, AvlRandomOpsTest,
    ::testing::Values(RandomOpsParam{1, 500}, RandomOpsParam{2, 1000},
                      RandomOpsParam{3, 2000}, RandomOpsParam{99, 4000}));

}  // namespace
}  // namespace mmdb
