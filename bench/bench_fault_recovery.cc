// Recovery under injected faults: how much does restart slow down — and how
// often does it fall into degraded mode (full log scan) — as the device
// fault rate climbs?
//
// Each row runs several sub-seeded epochs of a banking workload with the
// fault injector active on all three device layers (data disk, log device,
// stable memory), crashes, and recovers with the SAME injector still live,
// so recovery itself eats transient errors, bit-flipped log records and
// checksum-failed snapshot pages. Reported per row (means over sub-seeds):
//
//   recovery ms     wall time of RecoverStore
//   scanned         log records scanned (rises when the first-update table
//                   is distrusted and the scan restarts from the log head)
//   redo/undo       records rewritten into the memory image
//   corrupt         checksum-failed log records skipped
//   quarantine      snapshot pages zero-filled and rebuilt from the log
//   retries         transient I/O errors absorbed by bounded retry
//   degraded        fraction of epochs that fell back to a full log scan
//
// The faults-off row is the baseline the <5% acceptance check compares
// against: CRC maintenance and stats plumbing must be noise, not cost.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "common/check.h"
#include "common/random.h"
#include "sim/fault_injector.h"
#include "txn/checkpoint.h"
#include "txn/recovery.h"
#include "txn/transaction_manager.h"

namespace mmdb {
namespace {

using std::chrono::microseconds;

constexpr int64_t kAccounts = 512;
constexpr int32_t kBalanceSize = 32;
constexpr int kSubSeeds = 5;

struct FaultConfig {
  const char* name;
  double transient_rate;
  double bit_flip_rate;
};

struct RowResult {
  double recovery_ms = 0;
  double scanned = 0;
  double redo = 0;
  double undo = 0;
  int64_t corrupt = 0;
  int64_t quarantined = 0;
  int64_t retries = 0;
  int degraded_epochs = 0;
};

std::string Balance(int64_t amount) {
  std::string v(kBalanceSize, '\0');
  std::snprintf(v.data(), v.size(), "%lld", static_cast<long long>(amount));
  return v;
}

/// One workload epoch + crash + recovery under `fopts`; returns the
/// RecoveryStats of the restart.
RecoveryStats RunEpoch(uint64_t seed, const FaultInjectorOptions& fopts,
                       int transfers) {
  FaultInjector injector(fopts);
  SimulatedDisk disk(512);
  disk.set_fault_injector(&injector);
  StableMemory stable(1 << 20);
  stable.set_fault_injector(&injector);
  LogDevice device(4096, microseconds(0));
  device.set_fault_injector(&injector);

  RecoverableStore store(&disk, kAccounts, kBalanceSize, 512);
  FirstUpdateTable fut(&stable, store.num_pages());
  LockManager locks;
  GroupCommitLogOptions gopts;
  gopts.group_commit = false;
  GroupCommitLog wal({&device}, gopts);
  wal.Start();
  TransactionManager tm(&store, &locks, &wal, &fut);
  Checkpointer checkpointer(&store, &fut, &wal);

  Random rng(seed);
  // Opening grant as a transaction, so quarantined pages can be rebuilt.
  {
    const TxnId txn = tm.Begin();
    for (int64_t a = 0; a < kAccounts; ++a) {
      MMDB_CHECK(tm.Update(txn, a, Balance(100)).ok());
    }
    MMDB_CHECK(tm.Commit(txn).ok());
  }
  std::map<int64_t, int64_t> balances;
  for (int t = 0; t < transfers; ++t) {
    const int64_t from = int64_t(rng.Uniform(kAccounts));
    int64_t to = int64_t(rng.Uniform(kAccounts));
    if (to == from) to = (to + 1) % kAccounts;
    const int64_t amount = 1 + int64_t(rng.Uniform(10));
    balances.try_emplace(from, 100);
    balances.try_emplace(to, 100);
    const TxnId txn = tm.Begin();
    MMDB_CHECK(tm.Update(txn, from, Balance(balances[from] - amount)).ok());
    MMDB_CHECK(tm.Update(txn, to, Balance(balances[to] + amount)).ok());
    MMDB_CHECK(tm.Commit(txn).ok());
    balances[from] -= amount;
    balances[to] += amount;
    if (t % 32 == 31) MMDB_CHECK(checkpointer.CheckpointOnce().ok());
  }

  wal.CrashStop();
  store.SimulateCrash();
  auto stats = RecoverStore(&store, &wal, &fut);
  MMDB_CHECK_MSG(stats.ok(), stats.status().ToString().c_str());
  wal.Stop();
  return *stats;
}

RowResult RunRow(const FaultConfig& config, int transfers) {
  RowResult row;
  for (int s = 0; s < kSubSeeds; ++s) {
    FaultInjectorOptions fopts;
    fopts.seed = 0xFA17ul * (s + 1);
    fopts.transient_error_rate = config.transient_rate;
    fopts.bit_flip_rate = config.bit_flip_rate;
    const RecoveryStats stats = RunEpoch(1000 + s, fopts, transfers);
    row.recovery_ms += stats.wall_seconds * 1e3 / kSubSeeds;
    row.scanned += double(stats.log_records_scanned) / kSubSeeds;
    row.redo += double(stats.redo_applied) / kSubSeeds;
    row.undo += double(stats.undo_applied) / kSubSeeds;
    row.corrupt += stats.corrupt_records_skipped;
    row.quarantined += stats.snapshot_pages_quarantined;
    row.retries += stats.retries;
    if (stats.degraded_mode) ++row.degraded_epochs;
  }
  return row;
}

}  // namespace
}  // namespace mmdb

int main(int argc, char** argv) {
  using namespace mmdb;
  const int transfers = argc > 1 ? std::atoi(argv[1]) : 2000;
  const FaultConfig configs[] = {
      {"faults off (baseline)", 0.00, 0.0},
      {"transient 1%", 0.01, 0.0},
      {"transient 2%", 0.02, 0.0},
      {"transient 5%", 0.05, 0.0},
      {"transient 10%", 0.10, 0.0},
      {"bit flips 0.5%", 0.00, 0.005},
      {"bit flips 2%", 0.00, 0.02},
      {"transient 5% + flips 1%", 0.05, 0.01},
  };
  std::printf("== recovery under injected faults (%d transfers, %d accounts, "
              "%d sub-seeds per row) ==\n\n",
              transfers, int(kAccounts), kSubSeeds);
  std::printf("%-26s %11s %9s %7s %6s %8s %11s %8s %9s\n", "fault mix",
              "recovery ms", "scanned", "redo", "undo", "corrupt",
              "quarantined", "retries", "degraded");
  for (const FaultConfig& config : configs) {
    const RowResult row = RunRow(config, transfers);
    std::printf("%-26s %11.2f %9.0f %7.0f %6.0f %8lld %11lld %8lld %6d/%d\n",
                config.name, row.recovery_ms, row.scanned, row.redo, row.undo,
                static_cast<long long>(row.corrupt),
                static_cast<long long>(row.quarantined),
                static_cast<long long>(row.retries), row.degraded_epochs,
                kSubSeeds);
  }
  std::printf(
      "\nreading the table: transient errors only cost retries; bit flips "
      "corrupt log records (skipped, counted) and snapshot pages "
      "(quarantined, rebuilt from the log), and any quarantine or "
      "first-update-table damage forces a degraded full-log scan — more "
      "records scanned, slower restart, same final state.\n");
  return 0;
}
