// Differential consistency harness for online hot backup (DESIGN.md §13):
// backups taken WHILE a seeded banking workload commits transfers must
// restore to a transaction-consistent image — byte-identical to what a
// blocking checkpoint of the same LSN fence would have produced — and
// full -> incremental -> incremental chains, point-in-time restore, and
// the quarantine-heal page-LSN regression are covered alongside.

#include "backup/hot_backup.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "sim/fault_injector.h"
#include "txn/banking.h"

namespace mmdb {
namespace {

using std::chrono::microseconds;

constexpr int64_t kRecords = 256;
constexpr int32_t kRecordSize = 32;
constexpr int64_t kPageSize = 4096;

Database::TxnPlaneOptions PlaneOptions() {
  Database::TxnPlaneOptions topts;
  topts.num_records = kRecords;
  topts.record_size = kRecordSize;
  topts.log_write_latency = microseconds(0);
  return topts;
}

std::string Val(char tag, int64_t i) {
  std::string v = tag + std::to_string(i);
  v.resize(kRecordSize, '\0');
  return v;
}

TxnId CommitValue(Database* db, int64_t record, const std::string& value) {
  TransactionManager* tm = db->txn_manager();
  const TxnId t = tm->Begin();
  EXPECT_TRUE(tm->Update(t, record, value).ok());
  EXPECT_TRUE(tm->Commit(t).ok());
  return t;
}

std::vector<std::string> AllRecords(RecoverableStore* store) {
  std::vector<std::string> out(store->num_records());
  for (int64_t i = 0; i < store->num_records(); ++i) {
    EXPECT_TRUE(store->ReadRecord(i, &out[i]).ok());
  }
  return out;
}

/// A fresh destination record plane to restore into: disk + stable memory
/// + empty store + first-update table, detached from any primary.
struct RestoreTarget {
  RestoreTarget(int64_t num_records = kRecords,
                int32_t record_size = kRecordSize)
      : disk(kPageSize),
        stable(1 << 20),
        store(&disk, num_records, record_size, kPageSize),
        fut(&stable, store.num_pages()) {}

  SimulatedDisk disk;
  StableMemory stable;
  RecoverableStore store;
  FirstUpdateTable fut;
};

TEST(HotBackup, FullBackupRestoresByteForByte) {
  Database db;
  ASSERT_TRUE(db.EnableTransactions(PlaneOptions()).ok());
  for (int64_t i = 0; i < kRecords; ++i) CommitValue(&db, i, Val('a', i));
  ASSERT_TRUE(db.CheckpointNow().ok());
  for (int64_t i = 0; i < kRecords; i += 3) CommitValue(&db, i, Val('b', i));

  auto img = db.backup()->RunHotBackup();
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  EXPECT_TRUE(img->is_full());
  EXPECT_EQ(static_cast<int64_t>(img->pages.size()),
            db.recoverable_store()->num_pages());

  // Restore through the Database wrapper into a second database.
  Database dest;
  ASSERT_TRUE(dest.EnableTransactions(PlaneOptions()).ok());
  ASSERT_TRUE(dest.RestoreFromBackup({&*img}).ok());
  EXPECT_EQ(AllRecords(db.recoverable_store()),
            AllRecords(dest.recoverable_store()));

  // The destination snapshot was checkpointed at restore: it survives a
  // crash + recovery with an empty log.
  ASSERT_TRUE(dest.Crash().ok());
  ASSERT_TRUE(dest.Recover().ok());
  EXPECT_EQ(AllRecords(db.recoverable_store()),
            AllRecords(dest.recoverable_store()));
}

TEST(HotBackup, InFlightTransactionIsRolledBackAtRestore) {
  Database db;
  ASSERT_TRUE(db.EnableTransactions(PlaneOptions()).ok());
  for (int64_t i = 0; i < 8; ++i) CommitValue(&db, i, Val('a', i));

  // In flight across the whole backup; its updates ARE durable (the end
  // fence waits past them) but no commit record exists below the fence.
  TransactionManager* tm = db.txn_manager();
  const TxnId loser = tm->Begin();
  ASSERT_TRUE(tm->Update(loser, 0, Val('L', 0)).ok());
  ASSERT_TRUE(tm->Update(loser, 7, Val('L', 7)).ok());

  auto img = db.backup()->RunHotBackup();
  ASSERT_TRUE(img.ok()) << img.status().ToString();

  RestoreTarget dest;
  ASSERT_TRUE(
      BackupManager::RestoreChain({&*img}, &dest.store, &dest.fut).ok());
  std::string v;
  ASSERT_TRUE(dest.store.ReadRecord(0, &v).ok());
  EXPECT_EQ(v, Val('a', 0));
  ASSERT_TRUE(dest.store.ReadRecord(7, &v).ok());
  EXPECT_EQ(v, Val('a', 7));

  ASSERT_TRUE(tm->Abort(loser).ok());
}

// The differential harness proper: transfers commit on 8 threads while
// backups run. Every backup must restore to a transaction-consistent cut —
// the banking conservation invariant (total balance never changes) detects
// any torn or non-atomic capture — and a backup taken after the workload
// quiesces must equal the primary byte for byte, i.e. exactly what a
// blocking checkpoint at that fence would contain.
TEST(HotBackup, ConcurrentBankingWorkloadRestoresConsistently) {
  BankingOptions bopts;
  bopts.num_accounts = kRecords;
  bopts.record_size = kRecordSize;
  bopts.num_threads = 8;
  bopts.duration = std::chrono::milliseconds(300);

  Database db;
  ASSERT_TRUE(db.EnableTransactions(PlaneOptions()).ok());
  ASSERT_TRUE(InitAccounts(db.recoverable_store(), bopts).ok());
  const int64_t expected_total = bopts.num_accounts * bopts.initial_balance;

  BankingResult result;
  std::thread worker([&] {
    result = RunBankingWorkload(db.txn_manager(), bopts);
  });

  // Hot backups in the thick of it.
  std::vector<BackupImage> images;
  for (int i = 0; i < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    auto img = db.backup()->RunHotBackup();
    ASSERT_TRUE(img.ok()) << img.status().ToString();
    images.push_back(std::move(*img));
  }
  worker.join();
  ASSERT_GT(result.committed, 0);

  for (const BackupImage& img : images) {
    RestoreTarget dest;
    ASSERT_TRUE(
        BackupManager::RestoreChain({&img}, &dest.store, &dest.fut).ok());
    auto total = TotalBalance(&dest.store, bopts);
    ASSERT_TRUE(total.ok());
    EXPECT_EQ(*total, expected_total) << "backup " << img.backup_id
                                      << " captured a non-atomic cut";
  }

  // Quiesced: the hot image at this fence IS the blocking-checkpoint twin.
  auto final_img = db.backup()->RunHotBackup();
  ASSERT_TRUE(final_img.ok());
  RestoreTarget dest;
  ASSERT_TRUE(
      BackupManager::RestoreChain({&*final_img}, &dest.store, &dest.fut)
          .ok());
  EXPECT_EQ(AllRecords(db.recoverable_store()), AllRecords(&dest.store));
}

TEST(HotBackup, IncrementalChainSkipsCleanPagesAndRestores) {
  Database db;
  ASSERT_TRUE(db.EnableTransactions(PlaneOptions()).ok());
  for (int64_t i = 0; i < kRecords; ++i) CommitValue(&db, i, Val('a', i));

  auto full = db.backup()->RunHotBackup();
  ASSERT_TRUE(full.ok());

  // Generation 'b' touches only the first page's records.
  const int64_t per_page = db.recoverable_store()->records_per_page();
  for (int64_t i = 0; i < per_page; ++i) CommitValue(&db, i, Val('b', i));
  const std::vector<std::string> state_at_inc1 =
      AllRecords(db.recoverable_store());

  BackupOptions inc;
  inc.base_backup_id = full->backup_id;
  auto inc1 = db.backup()->RunHotBackup(inc);
  ASSERT_TRUE(inc1.ok());
  EXPECT_FALSE(inc1->is_full());
  EXPECT_LT(static_cast<int64_t>(inc1->pages.size()),
            db.recoverable_store()->num_pages())
      << "incremental should skip pages untouched since the base";
  EXPECT_GE(static_cast<int64_t>(inc1->pages.size()), 1);

  // Generation 'c' touches the second page only.
  for (int64_t i = per_page; i < 2 * per_page && i < kRecords; ++i) {
    CommitValue(&db, i, Val('c', i));
  }
  BackupOptions inc2o;
  inc2o.base_backup_id = inc1->backup_id;
  auto inc2 = db.backup()->RunHotBackup(inc2o);
  ASSERT_TRUE(inc2.ok());

  // Whole chain == primary now.
  {
    RestoreTarget dest;
    ASSERT_TRUE(BackupManager::RestoreChain({&*full, &*inc1, &*inc2},
                                            &dest.store, &dest.fut)
                    .ok());
    EXPECT_EQ(AllRecords(db.recoverable_store()), AllRecords(&dest.store));
  }
  // Prefix chain == the state frozen at inc1's fence.
  {
    RestoreTarget dest;
    ASSERT_TRUE(
        BackupManager::RestoreChain({&*full, &*inc1}, &dest.store, &dest.fut)
            .ok());
    EXPECT_EQ(state_at_inc1, AllRecords(&dest.store));
  }

  const BackupManager::Stats stats = db.backup()->stats();
  EXPECT_EQ(stats.backups_taken, 3);
  EXPECT_EQ(stats.incremental_backups, 2);
  EXPECT_GT(stats.pages_skipped, 0);
}

TEST(HotBackup, PointInTimeRestoreToMidWorkloadCommit) {
  Database db;
  ASSERT_TRUE(db.EnableTransactions(PlaneOptions()).ok());
  for (int64_t i = 0; i < kRecords; ++i) CommitValue(&db, i, Val('a', i));

  auto full = db.backup()->RunHotBackup();
  ASSERT_TRUE(full.ok());

  // Ten generations on record 5 after the backup; remember each commit id
  // and the state it left behind.
  std::vector<TxnId> commits;
  for (int g = 0; g < 10; ++g) {
    commits.push_back(CommitValue(&db, 5, Val('p', g)));
  }
  Wal* wal = db.wal();
  const Lsn horizon = wal->DurableHorizon();
  ASSERT_GT(horizon, full->end_lsn);
  const std::vector<LogRecord> tail =
      wal->ReadDurableRange(full->end_lsn, horizon);

  for (int g = 0; g < 10; g += 3) {
    RestoreTarget dest;
    RestoreOptions ropts;
    ropts.target_commit_txn = commits[g];
    ropts.extra_log = tail;
    ASSERT_TRUE(BackupManager::RestoreChain({&*full}, &dest.store, &dest.fut,
                                            ropts)
                    .ok());
    std::string v;
    ASSERT_TRUE(dest.store.ReadRecord(5, &v).ok());
    EXPECT_EQ(v, Val('p', g)) << "PITR to commit " << g;
    // Unrelated records are the 'a' generation throughout.
    ASSERT_TRUE(dest.store.ReadRecord(6, &v).ok());
    EXPECT_EQ(v, Val('a', 6));
  }

  // A target the captured log has never seen.
  RestoreTarget dest;
  RestoreOptions ropts;
  ropts.target_commit_txn = 999'999;
  ropts.extra_log = tail;
  EXPECT_EQ(
      BackupManager::RestoreChain({&*full}, &dest.store, &dest.fut, ropts)
          .code(),
      StatusCode::kNotFound);
}

TEST(HotBackup, ChainValidationRejectsBadInput) {
  Database db;
  ASSERT_TRUE(db.EnableTransactions(PlaneOptions()).ok());
  CommitValue(&db, 0, Val('a', 0));
  auto full = db.backup()->RunHotBackup();
  ASSERT_TRUE(full.ok());

  RestoreTarget dest;
  // Empty chain.
  EXPECT_EQ(BackupManager::RestoreChain({}, &dest.store, &dest.fut).code(),
            StatusCode::kInvalidArgument);
  // Chain starting with an incremental.
  BackupImage fake = *full;
  fake.base_backup_id = full->backup_id;
  EXPECT_EQ(BackupManager::RestoreChain({&fake}, &dest.store, &dest.fut)
                .code(),
            StatusCode::kInvalidArgument);
  // Broken link.
  BackupImage orphan = *full;
  orphan.backup_id = 77;
  orphan.base_backup_id = 42;  // not full->backup_id
  EXPECT_EQ(BackupManager::RestoreChain({&*full, &orphan}, &dest.store,
                                        &dest.fut)
                .code(),
            StatusCode::kInvalidArgument);
  // Geometry mismatch.
  RestoreTarget small(kRecords / 2, kRecordSize);
  EXPECT_EQ(BackupManager::RestoreChain({&*full}, &small.store, &small.fut)
                .code(),
            StatusCode::kInvalidArgument);
  // Incremental onto an unknown base.
  BackupOptions bad;
  bad.base_backup_id = 12345;
  EXPECT_EQ(db.backup()->RunHotBackup(bad).status().code(),
            StatusCode::kNotFound);
}

// Regression (PR 8 satellite): a page quarantined at recovery load and
// healed by replay/zero-fill must carry a page LSN afterwards — otherwise
// the next incremental backup skips it and a restore of that chain
// resurrects the page's PRE-CRASH bytes, diverging from the primary.
TEST(HotBackup, HealedQuarantinedPageIsCapturedByIncremental) {
  FaultInjectorOptions fopts;
  fopts.seed = 7;
  FaultInjector injector(fopts);

  auto topts = PlaneOptions();
  topts.fault_injector = &injector;
  Database db;
  ASSERT_TRUE(db.EnableTransactions(topts).ok());
  RecoverableStore* store = db.recoverable_store();
  ASSERT_GE(store->num_pages(), 2);
  const int64_t victim_page = 1;
  const int64_t per_page = store->records_per_page();

  // Raw-seeded data (InitAccounts-style, never logged): the snapshot is
  // its ONLY durable copy, so when the victim page's snapshot dies the
  // heal can only zero-fill it — replay has no records to rebuild from.
  for (int64_t i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(store->WriteRecord(i, Val('a', i), 0, nullptr).ok());
  }
  ASSERT_TRUE(db.CheckpointNow().ok());

  auto full = db.backup()->RunHotBackup();
  ASSERT_TRUE(full.ok());

  // Post-backup traffic on ANOTHER page, so the post-crash log is
  // non-empty and the heal stamp lands past the full backup's fence.
  CommitValue(&db, 0, Val('z', 0));

  // The victim page's snapshot copy dies with the crash.
  injector.MarkPermanentError(FaultDevice::kDataDisk,
                              store->snapshot_file_id(), victim_page);
  ASSERT_TRUE(db.Crash().ok());
  auto stats = db.Recover();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->snapshot_pages_quarantined, 0);

  // Primary truth now: the victim page healed to zeros — the full
  // backup's copy of it ('a' values) is STALE.
  std::string v;
  ASSERT_TRUE(store->ReadRecord(victim_page * per_page, &v).ok());
  EXPECT_EQ(v, std::string(kRecordSize, '\0'));

  BackupOptions inc;
  inc.base_backup_id = full->backup_id;
  auto inc1 = db.backup()->RunHotBackup(inc);
  ASSERT_TRUE(inc1.ok()) << inc1.status().ToString();
  // THE regression assertion: the healed page must be in the increment.
  EXPECT_EQ(inc1->pages.count(victim_page), 1u)
      << "healed quarantined page missing from incremental backup";

  RestoreTarget dest;
  ASSERT_TRUE(BackupManager::RestoreChain({&*full, &*inc1}, &dest.store,
                                          &dest.fut)
                  .ok());
  EXPECT_EQ(AllRecords(store), AllRecords(&dest.store));
}

}  // namespace
}  // namespace mmdb
