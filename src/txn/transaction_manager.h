#ifndef MMDB_TXN_TRANSACTION_MANAGER_H_
#define MMDB_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "txn/lock_manager.h"
#include "txn/log_manager.h"
#include "txn/recoverable_store.h"

namespace mmdb {

/// Ties §5 together: strict two-phase locking against the LockManager,
/// old/new-value logging through the Wal, in-place updates to the
/// memory-resident RecoverableStore, and the pre-commit protocol:
///
///   Commit(T):
///     1. append T's commit record (with its dependency list) to the log
///        buffer — T is now PRE-COMMITTED;
///     2. release T's locks (others may read its dirty data, becoming
///        dependents);
///     3. wait until the commit record is durable;
///     4. finalize: drop T from the lock table's pre-committed sets and
///        notify the "user".
///
/// Aborts write compensation updates (old values restored) followed by an
/// abort record, so recovery can treat aborted transactions as replayable
/// winners and reserve undo processing for transactions in flight at the
/// crash.
class TransactionManager {
 public:
  /// `first_txn_id` must exceed every transaction id in the existing log
  /// (post-recovery restarts pass RecoveryStats::max_txn_id + 1 so new
  /// transactions cannot be confused with pre-crash ones). When `versions`
  /// is supplied, updates feed its version chains so lock-free snapshot
  /// readers can run alongside (§6 / version_store.h).
  TransactionManager(RecoverableStore* store, LockManager* locks, Wal* wal,
                     FirstUpdateTable* fut, TxnId first_txn_id = 1,
                     class VersionManager* versions = nullptr);

  /// Starts a transaction (writes its begin record).
  TxnId Begin();

  /// S-locks and reads a record.
  StatusOr<std::string> Read(TxnId txn, int64_t record_id);

  /// X-locks a record, logs old/new values, applies the update in memory.
  Status Update(TxnId txn, int64_t record_id, std::string_view new_value);

  /// Pre-commit + group-commit wait, per the class comment.
  Status Commit(TxnId txn);

  /// Undoes in memory (logging compensations), releases locks.
  Status Abort(TxnId txn);

  struct Stats {
    int64_t begun = 0;
    int64_t committed = 0;
    int64_t aborted = 0;
  };
  Stats stats() const;

  RecoverableStore* store() const { return store_; }
  Wal* wal() const { return wal_; }

 private:
  struct UndoEntry {
    int64_t record_id;
    std::string old_value;
    std::string new_value;
  };
  struct TxnState {
    std::vector<TxnId> deps;
    std::vector<UndoEntry> undo;
  };

  RecoverableStore* store_;
  LockManager* locks_;
  Wal* wal_;
  FirstUpdateTable* fut_;
  class VersionManager* versions_;

  std::atomic<TxnId> next_txn_{1};
  mutable std::mutex mu_;
  std::map<TxnId, TxnState> active_;
  Stats stats_;
};

}  // namespace mmdb

#endif  // MMDB_TXN_TRANSACTION_MANAGER_H_
