file(REMOVE_RECURSE
  "CMakeFiles/schema_row_test.dir/schema_row_test.cc.o"
  "CMakeFiles/schema_row_test.dir/schema_row_test.cc.o.d"
  "schema_row_test"
  "schema_row_test.pdb"
  "schema_row_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_row_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
