#ifndef MMDB_STORAGE_DATAGEN_H_
#define MMDB_STORAGE_DATAGEN_H_

#include <cstdint>
#include <string>

#include "storage/relation.h"

namespace mmdb {

/// Synthetic workload generators matching the paper's parameterisation:
/// relations are characterised only by tuple count ||R||, tuple width L,
/// key width K, and key distribution. These stand in for the production
/// data the 1984 testbed used (see DESIGN.md §3).

/// How foreign-key/join columns are distributed.
enum class KeyDistribution {
  kUniqueShuffled,  ///< a random permutation of 0..n-1 (primary keys)
  kUniform,         ///< uniform over [0, key_range)
  kZipf,            ///< Zipf(theta) over [0, key_range)
};

struct GenOptions {
  int64_t num_tuples = 1000;
  /// Target tuple width L in bytes; padding is added to reach it.
  /// Minimum is 16 (key + 8 bytes of payload).
  int32_t tuple_width = 64;
  KeyDistribution distribution = KeyDistribution::kUniqueShuffled;
  /// Domain of the key column for kUniform / kZipf.
  int64_t key_range = 1000;
  double zipf_theta = 0.8;
  uint64_t seed = 1;
};

/// Builds a relation with schema (key:INT64, payload:INT64, pad:CHAR(w)).
/// `payload` is a deterministic function of the tuple index so tests can
/// verify join outputs carry the right partner tuples.
Relation MakeKeyedRelation(const GenOptions& opts);

/// The employee relation of the paper's §2 examples:
/// (emp_id:INT64, name:CHAR(20), dept:INT64, salary:DOUBLE, pad:CHAR(w)).
/// Names look like "jones_000042" so that prefix queries ("J*") match a
/// contiguous key range.
Relation MakeEmployeeRelation(int64_t num_tuples, int32_t tuple_width,
                              uint64_t seed);

/// Pretty name for a distribution (logging).
std::string_view KeyDistributionName(KeyDistribution d);

}  // namespace mmdb

#endif  // MMDB_STORAGE_DATAGEN_H_
