file(REMOVE_RECURSE
  "CMakeFiles/mmdb_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/mmdb_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/mmdb_storage.dir/storage/datagen.cc.o"
  "CMakeFiles/mmdb_storage.dir/storage/datagen.cc.o.d"
  "CMakeFiles/mmdb_storage.dir/storage/heap_file.cc.o"
  "CMakeFiles/mmdb_storage.dir/storage/heap_file.cc.o.d"
  "CMakeFiles/mmdb_storage.dir/storage/page.cc.o"
  "CMakeFiles/mmdb_storage.dir/storage/page.cc.o.d"
  "CMakeFiles/mmdb_storage.dir/storage/page_file.cc.o"
  "CMakeFiles/mmdb_storage.dir/storage/page_file.cc.o.d"
  "CMakeFiles/mmdb_storage.dir/storage/relation.cc.o"
  "CMakeFiles/mmdb_storage.dir/storage/relation.cc.o.d"
  "CMakeFiles/mmdb_storage.dir/storage/row.cc.o"
  "CMakeFiles/mmdb_storage.dir/storage/row.cc.o.d"
  "CMakeFiles/mmdb_storage.dir/storage/schema.cc.o"
  "CMakeFiles/mmdb_storage.dir/storage/schema.cc.o.d"
  "CMakeFiles/mmdb_storage.dir/storage/value.cc.o"
  "CMakeFiles/mmdb_storage.dir/storage/value.cc.o.d"
  "libmmdb_storage.a"
  "libmmdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
