#include "replica/log_shipper.h"

#include <utility>
#include <vector>

namespace mmdb {

LogShipper::LogShipper(Wal* primary_wal, Replica* replica, Options options)
    : wal_(primary_wal), replica_(replica), options_(options) {}

LogShipper::LogShipper(Wal* primary_wal, Replica* replica)
    : LogShipper(primary_wal, replica, Options()) {}

LogShipper::~LogShipper() { Stop(); }

StatusOr<int64_t> LogShipper::ShipOnce() {
  // One shipper may be driven from the poll thread and a test at once;
  // serialize whole batches so cursor advance matches what was applied.
  std::unique_lock<std::mutex> lock(mu_);
  const Lsn horizon = wal_->DurableHorizon();
  if (horizon <= 0) {
    return Status::FailedPrecondition(
        "wal implementation does not support log shipping");
  }
  if (horizon <= cursor_) return int64_t{0};

  std::vector<LogRecord> batch = wal_->ReadDurableRange(cursor_, horizon);
  Lsn upto = horizon;
  if (options_.max_batch_records > 0 &&
      static_cast<int64_t>(batch.size()) > options_.max_batch_records) {
    batch.resize(options_.max_batch_records);
    // The stream stays gapless: next batch resumes right after the last
    // record actually shipped.
    upto = batch.back().lsn + 1;
  }
  MMDB_RETURN_IF_ERROR(replica_->ApplyRecords(batch, upto, horizon));
  cursor_ = upto;
  stats_.records_shipped += static_cast<int64_t>(batch.size());
  ++stats_.batches;
  stats_.last_shipped_lsn = cursor_;
  return static_cast<int64_t>(batch.size());
}

Status LogShipper::CatchUp() {
  const Lsn target = wal_->DurableHorizon();
  while (replica_->AppliedHorizon() < target) {
    MMDB_ASSIGN_OR_RETURN(int64_t shipped, ShipOnce());
    (void)shipped;
  }
  return Status::OK();
}

void LogShipper::Start() {
  if (running_.exchange(true)) return;
  {
    std::unique_lock<std::mutex> lock(stop_mu_);
    stopping_ = false;
  }
  thread_ = std::thread([this] { PollLoop(); });
}

void LogShipper::Stop() {
  if (!running_.exchange(false)) return;
  {
    std::unique_lock<std::mutex> lock(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void LogShipper::PollLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mu_);
      stop_cv_.wait_for(lock, options_.poll_interval,
                        [this] { return stopping_; });
      if (stopping_) return;
    }
    // A failed ship (e.g. promoted replica) ends the stream; the primary
    // side keeps its durable log, so a new shipper can resume later.
    auto shipped = ShipOnce();
    if (!shipped.ok()) return;
  }
}

LogShipper::Stats LogShipper::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mmdb
