
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/banking.cc" "src/CMakeFiles/mmdb_txn.dir/txn/banking.cc.o" "gcc" "src/CMakeFiles/mmdb_txn.dir/txn/banking.cc.o.d"
  "/root/repo/src/txn/checkpoint.cc" "src/CMakeFiles/mmdb_txn.dir/txn/checkpoint.cc.o" "gcc" "src/CMakeFiles/mmdb_txn.dir/txn/checkpoint.cc.o.d"
  "/root/repo/src/txn/lock_manager.cc" "src/CMakeFiles/mmdb_txn.dir/txn/lock_manager.cc.o" "gcc" "src/CMakeFiles/mmdb_txn.dir/txn/lock_manager.cc.o.d"
  "/root/repo/src/txn/log_device.cc" "src/CMakeFiles/mmdb_txn.dir/txn/log_device.cc.o" "gcc" "src/CMakeFiles/mmdb_txn.dir/txn/log_device.cc.o.d"
  "/root/repo/src/txn/log_manager.cc" "src/CMakeFiles/mmdb_txn.dir/txn/log_manager.cc.o" "gcc" "src/CMakeFiles/mmdb_txn.dir/txn/log_manager.cc.o.d"
  "/root/repo/src/txn/log_record.cc" "src/CMakeFiles/mmdb_txn.dir/txn/log_record.cc.o" "gcc" "src/CMakeFiles/mmdb_txn.dir/txn/log_record.cc.o.d"
  "/root/repo/src/txn/partitioned_log.cc" "src/CMakeFiles/mmdb_txn.dir/txn/partitioned_log.cc.o" "gcc" "src/CMakeFiles/mmdb_txn.dir/txn/partitioned_log.cc.o.d"
  "/root/repo/src/txn/recoverable_store.cc" "src/CMakeFiles/mmdb_txn.dir/txn/recoverable_store.cc.o" "gcc" "src/CMakeFiles/mmdb_txn.dir/txn/recoverable_store.cc.o.d"
  "/root/repo/src/txn/recovery.cc" "src/CMakeFiles/mmdb_txn.dir/txn/recovery.cc.o" "gcc" "src/CMakeFiles/mmdb_txn.dir/txn/recovery.cc.o.d"
  "/root/repo/src/txn/stable_log.cc" "src/CMakeFiles/mmdb_txn.dir/txn/stable_log.cc.o" "gcc" "src/CMakeFiles/mmdb_txn.dir/txn/stable_log.cc.o.d"
  "/root/repo/src/txn/transaction_manager.cc" "src/CMakeFiles/mmdb_txn.dir/txn/transaction_manager.cc.o" "gcc" "src/CMakeFiles/mmdb_txn.dir/txn/transaction_manager.cc.o.d"
  "/root/repo/src/txn/version_store.cc" "src/CMakeFiles/mmdb_txn.dir/txn/version_store.cc.o" "gcc" "src/CMakeFiles/mmdb_txn.dir/txn/version_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/mmdb_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/mmdb_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/mmdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
