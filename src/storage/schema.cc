#include "storage/schema.h"

#include <set>

#include "common/check.h"

namespace mmdb {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  offsets_.reserve(columns_.size());
  int32_t off = 0;
  for (const Column& c : columns_) {
    MMDB_CHECK_MSG(c.width > 0, "column width must be positive");
    offsets_.push_back(off);
    off += c.width;
  }
  record_size_ = off;
}

StatusOr<int> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound("no column named " + name);
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::set<std::string> left_names;
  for (const Column& c : left.columns_) left_names.insert(c.name);

  std::vector<Column> cols = left.columns_;
  for (Column c : right.columns_) {
    if (left_names.count(c.name)) {
      c.name = "r_" + c.name;
    }
    cols.push_back(std::move(c));
  }
  return Schema(std::move(cols));
}

Schema Schema::Select(const std::vector<int>& column_indexes) const {
  std::vector<Column> cols;
  cols.reserve(column_indexes.size());
  for (int i : column_indexes) {
    MMDB_CHECK(i >= 0 && i < num_columns());
    cols.push_back(columns_[static_cast<size_t>(i)]);
  }
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeName(columns_[i].type);
    if (columns_[i].type == ValueType::kString) {
      out += "(";
      out += std::to_string(columns_[i].width);
      out += ")";
    }
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& a = columns_[i];
    const Column& b = other.columns_[i];
    if (a.name != b.name || a.type != b.type || a.width != b.width) {
      return false;
    }
  }
  return true;
}

}  // namespace mmdb
