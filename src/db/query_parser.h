#ifndef MMDB_DB_QUERY_PARSER_H_
#define MMDB_DB_QUERY_PARSER_H_

#include <optional>
#include <string>

#include "exec/aggregate.h"
#include "optimizer/catalog.h"
#include "optimizer/plan.h"

namespace mmdb {

/// A parsed SQL statement, normalized into the engine's native structures.
/// The dialect covers exactly the fragment the paper evaluates:
///
///   CREATE TABLE t (col INT64 | DOUBLE | CHAR(n), ...)
///   INSERT INTO t VALUES (lit, ...)[, (lit, ...) ...]
///   UPDATE t SET col = lit [, col = lit ...] [WHERE col op literal ...]
///   SELECT [DISTINCT] cols | * | aggregates
///     FROM t1 [, t2 ...]
///     [WHERE a.x = b.y AND c op literal AND name LIKE 'j%' ...]
///     [GROUP BY cols]
///   EXPLAIN [ANALYZE] SELECT ...
///
/// Restrictions (by design — see README "Status"): conjunctive predicates
/// only, equi-joins only, LIKE with a trailing '%' only (the paper's "J*"
/// prefix query), aggregates are COUNT/SUM/AVG/MIN/MAX.
struct ParsedStatement {
  enum class Kind {
    kSelect,
    kCreateTable,
    kInsert,
    kUpdate,
    kExplain,
    kExplainAnalyze,  ///< run the query, annotate the plan with run stats
  };
  Kind kind = Kind::kSelect;

  // kSelect / kExplain / kExplainAnalyze; kUpdate reuses query.tables (the
  // one target table) and query.filters (the WHERE restrictions).
  Query query;
  bool distinct = false;
  /// Present when the select list contains aggregates; group_by/column
  /// indexes refer to the columns of `query.select_columns`.
  std::optional<AggregateSpec> aggregate;

  // kCreateTable / kUpdate
  std::string table_name;
  Schema schema;

  // kInsert
  std::vector<Row> rows;

  // kUpdate: column = literal assignments, literals coerced to the
  // column's declared type at parse time.
  struct SetClause {
    std::string column;
    Value value;
  };
  std::vector<SetClause> set_clauses;
};

/// Parses one statement. Column references are resolved against `catalog`
/// (unqualified names must be unambiguous across the FROM tables); CREATE
/// TABLE and INSERT do not consult it beyond existence checks the caller
/// performs on execution.
StatusOr<ParsedStatement> ParseStatement(const std::string& sql,
                                         const Catalog& catalog);

}  // namespace mmdb

#endif  // MMDB_DB_QUERY_PARSER_H_
