// Quickstart: create tables, load data, index, and run an optimized join
// query through the public Database facade.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "db/database.h"

using namespace mmdb;  // NOLINT — example brevity

int main() {
  Database db;

  // ---- 1. Schema + data ----------------------------------------------
  Schema dept_schema({Column::Int64("dept_id"), Column::Char("dept_name", 16)});
  Schema emp_schema({Column::Int64("emp_id"), Column::Char("name", 20),
                     Column::Int64("dept"), Column::Double("salary")});

  MMDB_CHECK(db.CreateTable("dept", dept_schema).ok());
  MMDB_CHECK(db.CreateTable("emp", emp_schema).ok());

  const char* dept_names[] = {"engineering", "sales", "support", "finance"};
  for (int64_t i = 0; i < 4; ++i) {
    MMDB_CHECK(db.Insert("dept", {i, std::string(dept_names[i])}).ok());
  }
  Random rng(7);
  for (int64_t i = 0; i < 1000; ++i) {
    MMDB_CHECK(db.Insert("emp", {i, "emp_" + std::to_string(i),
                                 static_cast<int64_t>(rng.Uniform(4)),
                                 40000.0 + rng.NextDouble() * 60000.0})
                   .ok());
  }

  // ---- 2. Point access through an index (§2) ---------------------------
  MMDB_CHECK(db.CreateIndex("emp", "emp_id", Database::IndexType::kAuto).ok());
  StatusOr<Row> jones = db.IndexLookup("emp", "emp_id", Value{int64_t{42}});
  MMDB_CHECK(jones.ok());
  std::printf("emp 42: %s\n", RowToString(*jones).c_str());

  // ---- 3. A join query through the optimizer (§3/§4) -------------------
  Query q;
  q.tables = {"emp", "dept"};
  q.joins = {{ColumnRef{"emp", "dept"}, ColumnRef{"dept", "dept_id"}}};
  q.filters = {{"emp", "salary", CmpOp::kGt, Value{80000.0}}};
  q.select_columns = {{"emp", "name"}, {"dept", "dept_name"},
                      {"emp", "salary"}};

  StatusOr<std::string> plan = db.Explain(q);
  MMDB_CHECK(plan.ok());
  std::printf("plan:\n%s", plan->c_str());

  StatusOr<QueryResult> result = db.Execute(q);
  MMDB_CHECK(result.ok());
  std::printf("high earners: %lld rows; first: %s\n",
              static_cast<long long>(result->relation.num_tuples()),
              result->relation.num_tuples() > 0
                  ? RowToString(result->relation.rows()[0]).c_str()
                  : "(none)");

  // ---- 4. Aggregation (§3.9) -------------------------------------------
  Query all_emps;
  all_emps.tables = {"emp"};
  AggregateSpec agg;
  agg.group_by = {2};  // dept column of emp
  agg.aggregates.push_back({AggFn::kAvg, 3, "avg_salary"});
  agg.aggregates.push_back({AggFn::kCount, 0, "n"});
  StatusOr<Relation> by_dept = db.ExecuteAggregate(all_emps, agg);
  MMDB_CHECK(by_dept.ok());
  for (const Row& row : by_dept->rows()) {
    std::printf("dept %s\n", RowToString(row).c_str());
  }

  std::printf("simulated cost so far: %s\n",
              db.clock()->DebugString().c_str());
  return 0;
}
