// Differential property suite for vectorized execution (DESIGN.md §14):
// for randomized schemas, predicates and joins, the tuple and vector plan
// paths must produce the same row sequence, the same cost-clock totals and
// the same metrics snapshot — at every DOP. Wall-clock is the only thing
// the vector path is allowed to change.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "optimizer/executor.h"
#include "optimizer/optimizer.h"
#include "storage/datagen.h"

namespace mmdb {
namespace {

std::vector<std::string> RowStrings(const Relation& rel) {
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(rel.num_tuples()));
  for (const Row& row : rel.rows()) out.push_back(RowToString(row));
  return out;
}

struct Trial {
  uint64_t seed;
  int64_t r_tuples;
  int64_t s_tuples;
  int64_t memory_pages;  // small values force the spilling join paths
};

class VectorDifferentialTest : public ::testing::TestWithParam<Trial> {};

TEST_P(VectorDifferentialTest, TupleAndVectorAgreeAtEveryDop) {
  const Trial t = GetParam();
  std::mt19937_64 rng(t.seed);

  GenOptions r_opts;
  r_opts.num_tuples = t.r_tuples;
  r_opts.tuple_width = 64;
  r_opts.seed = t.seed * 2 + 1;
  const Relation r = MakeKeyedRelation(r_opts);
  GenOptions s_opts;
  s_opts.num_tuples = t.s_tuples;
  s_opts.tuple_width = 48;
  s_opts.distribution =
      (t.seed % 2 == 0) ? KeyDistribution::kUniform : KeyDistribution::kZipf;
  s_opts.key_range = t.r_tuples;
  s_opts.seed = t.seed * 2 + 2;
  const Relation s = MakeKeyedRelation(s_opts);

  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("r", &r).ok());
  ASSERT_TRUE(catalog.RegisterTable("s", &s).ok());

  // Random conjunctive filters on both tables.
  Query query;
  query.tables = {"r", "s"};
  query.joins = {{{"r", "key"}, {"s", "key"}}};
  const CmpOp ops[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                       CmpOp::kGe, CmpOp::kNe};
  const int num_preds = 1 + static_cast<int>(rng() % 3);
  for (int i = 0; i < num_preds; ++i) {
    Predicate pred;
    pred.table = (rng() % 2 == 0) ? "r" : "s";
    pred.column = (rng() % 2 == 0) ? "key" : "payload";
    pred.op = ops[rng() % 5];
    pred.literal = Value{static_cast<int64_t>(rng() % (2 * t.r_tuples))};
    query.filters.push_back(pred);
  }
  if (rng() % 2 == 0) {
    query.select_columns = {{"r", "key"}, {"s", "payload"}, {"r", "pad"}};
  }

  std::vector<std::string> base_rows;
  CostCounters base_counters;
  std::string base_metrics;
  std::string base_plan;
  bool have_base = false;
  for (const int dop : {1, 2, 4}) {
    for (const bool vectorize : {false, true}) {
      OptimizerOptions opts;
      opts.memory_pages = t.memory_pages;
      opts.hash_only = true;
      opts.dop = dop;
      opts.vectorize = vectorize;
      ExecEnv env(t.memory_pages);
      auto result = RunQuery(query, catalog, opts, &env.ctx);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      const std::vector<std::string> rows = RowStrings(result->relation);
      if (vectorize) {
        EXPECT_NE(result->plan_text.find("vector=on"), std::string::npos)
            << result->plan_text;
      }
      if (!have_base) {
        base_rows = rows;
        base_counters = env.clock.counters();
        base_metrics = env.metrics.ToJson();
        have_base = true;
        continue;
      }
      // Same bytes in the same order, same simulated work, same metrics —
      // regardless of DOP and regardless of tuple vs vector kernels.
      EXPECT_EQ(rows, base_rows) << "dop=" << dop << " vector=" << vectorize;
      EXPECT_EQ(env.clock.counters(), base_counters)
          << "dop=" << dop << " vector=" << vectorize;
      EXPECT_EQ(env.metrics.ToJson(), base_metrics)
          << "dop=" << dop << " vector=" << vectorize;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, VectorDifferentialTest,
    ::testing::Values(Trial{1, 800, 2'400, 4096},   // in-memory joins
                      Trial{2, 1'000, 3'000, 4096},
                      Trial{3, 1'200, 2'000, 8},    // spilling joins
                      Trial{4, 900, 2'700, 8},
                      Trial{5, 700, 2'100, 4},      // deep recursion
                      Trial{6, 1'500, 1'500, 4096}));

}  // namespace
}  // namespace mmdb
