// Reproduces §3 / Table 3: the qualitative Figure 1 conclusions are
// invariant over the tested parameter ranges:
//
//   comp 1-10us, hash 2-50us, move 10-50us, swap 20-250us,
//   IOseq 5-10ms, IOrand 15-35ms, F 1.0-1.4, |S| 10k-200k pages,
//   ||R|| 100k-1M tuples.
//
// We sweep a grid plus random samples of that space and, wherever the
// two-pass assumption sqrt(|S|F) <= |M| holds, verify:
//   (1) hybrid <= GRACE and hybrid <= sort-merge at every memory ratio;
//   (2) the winner at |M| >= sqrt(|S|F) is hash-based (never sort-merge).
// Representative rows are printed; any violation would abort.

#include <cstdio>

#include "common/check.h"
#include "common/random.h"
#include "cost/join_cost.h"

namespace mmdb {
namespace {

struct Sample {
  CostParams p;
  int64_t s_pages;
  int64_t r_tuples;
};

Sample RandomSample(Random* rng) {
  Sample s;
  s.p.comp_us = 1 + rng->NextDouble() * 9;
  s.p.hash_us = 2 + rng->NextDouble() * 48;
  s.p.move_us = 10 + rng->NextDouble() * 40;
  s.p.swap_us = 20 + rng->NextDouble() * 230;
  s.p.io_seq_us = 5000 + rng->NextDouble() * 5000;
  s.p.io_rand_us = 15000 + rng->NextDouble() * 20000;
  s.p.fudge = 1.0 + rng->NextDouble() * 0.4;
  s.s_pages = 10'000 + static_cast<int64_t>(rng->NextDouble() * 190'000);
  s.r_tuples = 100'000 + static_cast<int64_t>(rng->NextDouble() * 900'000);
  return s;
}

int checked = 0;

void CheckSample(const Sample& s, bool print) {
  JoinWorkload w;
  w.s_pages = s.s_pages;
  w.r_pages = std::min<int64_t>(s.s_pages, std::max<int64_t>(
      1, s.r_tuples / 40));  // 40 tuples/page, |R| <= |S|
  w.r_tuples = w.r_pages * 40;
  w.s_tuples = w.s_pages * 40;

  if (print) {
    std::printf(
        "comp=%4.1f hash=%4.1f move=%4.1f swap=%5.1f ioseq=%4.1fms "
        "iorand=%4.1fms F=%.2f |S|=%6lld ||R||=%7lld:",
        s.p.comp_us, s.p.hash_us, s.p.move_us, s.p.swap_us,
        s.p.io_seq_us / 1000, s.p.io_rand_us / 1000, s.p.fudge,
        static_cast<long long>(w.s_pages),
        static_cast<long long>(w.r_tuples));
  }
  for (double ratio : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    w.memory_pages =
        static_cast<int64_t>(ratio * double(w.r_pages) * s.p.fudge);
    if (!TwoPassAssumptionHolds(w, s.p)) continue;
    const AllJoinCosts c = ComputeAllJoinCosts(w, s.p);
    MMDB_CHECK_MSG(c.hybrid_hash.total_seconds <=
                       c.grace_hash.total_seconds + 1e-9,
                   "hybrid lost to GRACE");
    MMDB_CHECK_MSG(c.hybrid_hash.total_seconds <=
                       c.sort_merge.total_seconds + 1e-9,
                   "hybrid lost to sort-merge");
    ++checked;
    if (print && (ratio == 0.1 || ratio == 0.6)) {
      std::printf("  [%.1f] hy=%.0fs sm=%.0fs", ratio,
                  c.hybrid_hash.total_seconds, c.sort_merge.total_seconds);
    }
  }
  if (print) std::printf("\n");
}

}  // namespace
}  // namespace mmdb

int main() {
  using namespace mmdb;
  std::printf("== Table 3 (reproduction): qualitative invariance over the "
              "tested parameter ranges ==\n\n");
  // Grid corners.
  int printed = 0;
  for (double comp : {1.0, 10.0}) {
    for (double hash : {2.0, 50.0}) {
      for (double move : {10.0, 50.0}) {
        for (double swap : {20.0, 250.0}) {
          for (double io_seq : {5000.0, 10000.0}) {
            for (double io_rand : {15000.0, 35000.0}) {
              for (double fudge : {1.0, 1.4}) {
                for (int64_t s_pages : {int64_t{10'000}, int64_t{200'000}}) {
                  Sample s;
                  s.p.comp_us = comp;
                  s.p.hash_us = hash;
                  s.p.move_us = move;
                  s.p.swap_us = swap;
                  s.p.io_seq_us = io_seq;
                  s.p.io_rand_us = io_rand;
                  s.p.fudge = fudge;
                  s.s_pages = s_pages;
                  s.r_tuples = 400'000;
                  CheckSample(s, printed++ % 64 == 0);
                }
              }
            }
          }
        }
      }
    }
  }
  // Random interior samples.
  Random rng(20260707);
  for (int i = 0; i < 500; ++i) {
    CheckSample(RandomSample(&rng), i % 100 == 0);
  }
  std::printf("\nchecked %d (parameters, memory) points: hybrid hash was "
              "never beaten by GRACE or sort-merge wherever the paper's "
              "two-pass assumption holds — Table 3's conclusion.\n",
              checked);
  return 0;
}
