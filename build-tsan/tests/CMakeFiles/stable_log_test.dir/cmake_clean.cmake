file(REMOVE_RECURSE
  "CMakeFiles/stable_log_test.dir/stable_log_test.cc.o"
  "CMakeFiles/stable_log_test.dir/stable_log_test.cc.o.d"
  "stable_log_test"
  "stable_log_test.pdb"
  "stable_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stable_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
