file(REMOVE_RECURSE
  "CMakeFiles/mmdb_common.dir/common/random.cc.o"
  "CMakeFiles/mmdb_common.dir/common/random.cc.o.d"
  "CMakeFiles/mmdb_common.dir/common/status.cc.o"
  "CMakeFiles/mmdb_common.dir/common/status.cc.o.d"
  "CMakeFiles/mmdb_common.dir/common/thread_pool.cc.o"
  "CMakeFiles/mmdb_common.dir/common/thread_pool.cc.o.d"
  "libmmdb_common.a"
  "libmmdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
