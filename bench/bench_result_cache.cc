// Plan-fingerprint reuse cache under heavy read traffic (EXPERIMENTS.md
// §S10, DESIGN.md §15).
//
// Two phases, both machine-checked:
//  * Differential phase: a deterministic statement script — repeated
//    SELECT joins interleaved with UPDATEs that force invalidation — runs
//    in lockstep against a cache-on (costing-transparent) database and a
//    cache-off twin. Every statement must return byte-identical rows.
//  * Throughput phase: a skewed read-mostly workload from 8 concurrent
//    sessions (a hot pair of join queries absorbs most of the traffic; a
//    few sessions issue one invalidating UPDATE midway). The cache-on
//    database must clear a wall-clock speedup bar over the cache-off twin
//    (2x full, 1.3x under --smoke where inputs are small and noise
//    matters) AND serve with a hit rate >= 80%. Afterwards every workload
//    query is re-checked byte-for-byte across the two databases.
//
// Usage: bench_result_cache [--smoke] [--json=PATH]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "db/database.h"
#include "storage/datagen.h"

namespace mmdb {
namespace {

struct BenchConfig {
  bool smoke = false;
  int64_t item_rows = 20'000;  // build side, unique keys
  int64_t ord_rows = 60'000;   // probe side, uniform FKs into item
  int sessions = 8;
  int ops_per_session = 400;
  int writer_sessions = 4;  // sessions that issue one UPDATE midway
  int diff_rounds = 3;
  double required_speedup = 2.0;
  double required_hit_rate = 0.8;
};
BenchConfig cfg;

struct JsonEntry {
  std::string key;
  std::string value;  // already-rendered JSON
};
std::vector<JsonEntry> json_entries;

void JsonNum(const std::string& key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  json_entries.push_back({key, buf});
}
void JsonInt(const std::string& key, int64_t v) {
  json_entries.push_back({key, std::to_string(v)});
}

std::string RowBytes(const Relation& rel) {
  std::string out;
  for (const Row& row : rel.rows()) {
    out += RowToString(row);
    out += '\n';
  }
  return out;
}

// The workload's query set. Queries 0-5 are scan->join->project plans over
// item x ord with different probe-side constants; 6-7 are single-table
// filter->project plans. Both tables share column names, so every
// reference is qualified.
std::vector<std::string> WorkloadQueries() {
  std::vector<std::string> queries;
  for (int i = 0; i < 6; ++i) {
    const int64_t lo = cfg.ord_rows * (2 + i) / 10;
    queries.push_back(
        "SELECT item.key, item.payload, ord.payload FROM item, ord WHERE "
        "item.key = ord.key AND ord.payload >= " +
        std::to_string(lo));
  }
  queries.push_back("SELECT ord.key, ord.payload FROM ord WHERE ord.payload < " +
                    std::to_string(cfg.ord_rows / 4));
  queries.push_back(
      "SELECT item.key, item.payload FROM item WHERE item.payload >= " +
      std::to_string(cfg.item_rows / 2));
  return queries;
}

// Session `s`'s invalidating write. Distinct sessions target distinct ord
// keys and the assigned value depends only on (s, round), so the final
// table state is interleaving-independent — the cache-on and cache-off
// runs converge to identical data.
std::string WriterSql(int s, int round) {
  return "UPDATE ord SET payload = " + std::to_string(1'000'000 + 100 * round + s) +
         " WHERE key = " + std::to_string(7 * (s + 1));
}

void LoadTables(Database* db) {
  GenOptions item_opts;
  item_opts.num_tuples = cfg.item_rows;
  item_opts.tuple_width = 64;
  item_opts.distribution = KeyDistribution::kUniqueShuffled;
  item_opts.seed = 101;
  Relation item = MakeKeyedRelation(item_opts);
  GenOptions ord_opts;
  ord_opts.num_tuples = cfg.ord_rows;
  ord_opts.tuple_width = 48;
  ord_opts.distribution = KeyDistribution::kUniform;
  ord_opts.key_range = cfg.item_rows;
  ord_opts.seed = 103;
  Relation ord = MakeKeyedRelation(ord_opts);
  MMDB_CHECK(db->CreateTable("item", item.schema()).ok());
  MMDB_CHECK(db->BulkLoad("item", std::move(item)).ok());
  MMDB_CHECK(db->CreateTable("ord", ord.schema()).ok());
  MMDB_CHECK(db->BulkLoad("ord", std::move(ord)).ok());
}

Database MakeCachedDb() {
  Database::Options opts;
  opts.reuse_cache_bytes = (cfg.smoke ? 16ll : 64ll) << 20;
  // Costing-transparent mode: same plans as the cache-off twin, so the
  // byte-identity checks compare like with like (DESIGN.md §15).
  opts.reuse_plan_discounts = false;
  return Database(opts);
}

// ---- Phase 1: lockstep statement differential. ------------------------

void DifferentialSection(Database* cached, Database* plain) {
  const std::vector<std::string> queries = WorkloadQueries();
  std::vector<std::string> script;
  for (int round = 0; round < cfg.diff_rounds; ++round) {
    for (int rep = 0; rep < 2; ++rep) {  // rep 1 re-runs warm
      for (const std::string& q : queries) script.push_back(q);
    }
    // Forced invalidation between repetitions: the next round's first rep
    // must re-execute, not serve stale rows.
    script.push_back(WriterSql(0, round));
    script.push_back(WriterSql(1, round));
  }

  // Deltas, not totals: loading goes through Insert, which invalidates
  // per row, so the cumulative counter mostly measures the bulk load.
  const ReuseCache::Stats before = cached->reuse_cache()->stats();
  int64_t compared = 0;
  for (const std::string& sql : script) {
    auto on = cached->ExecuteSql(sql);
    auto off = plain->ExecuteSql(sql);
    MMDB_CHECK_MSG(on.ok() && off.ok(), "differential statement failed");
    MMDB_CHECK_MSG(on->rows_affected == off->rows_affected,
                   "rows_affected diverged between cache-on and cache-off");
    MMDB_CHECK_MSG(RowBytes(on->relation) == RowBytes(off->relation),
                   "cache-on rows differ from cache-off rows");
    ++compared;
  }
  const ReuseCache::Stats after = cached->reuse_cache()->stats();
  const int64_t hits = after.hits - before.hits;
  const int64_t misses = after.misses - before.misses;
  const int64_t installs = after.installs - before.installs;
  const int64_t invalidations = after.invalidations - before.invalidations;
  std::printf("== differential: %lld lockstep statements, %d rounds ==\n",
              static_cast<long long>(compared), cfg.diff_rounds);
  std::printf("cache: hits=%lld misses=%lld installs=%lld invalidations=%lld\n\n",
              static_cast<long long>(hits), static_cast<long long>(misses),
              static_cast<long long>(installs),
              static_cast<long long>(invalidations));
  MMDB_CHECK_MSG(hits > 0, "differential script never served a hit");
  MMDB_CHECK_MSG(invalidations > 0, "differential script never invalidated");
  JsonInt("diff.statements", compared);
  JsonInt("diff.hits", hits);
  JsonInt("diff.invalidations", invalidations);
}

// ---- Phase 2: skewed read-mostly throughput. --------------------------

// Runs the closed-loop workload against `db` and returns wall seconds.
// Skew: ~70% of reads land on queries 0-2; the rest spread uniformly.
double RunWorkload(Database* db, const std::vector<std::string>& queries) {
  std::atomic<int64_t> failures{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(cfg.sessions));
  for (int s = 0; s < cfg.sessions; ++s) {
    threads.emplace_back([&, s] {
      Random rng(static_cast<uint64_t>(211 + s));
      for (int op = 0; op < cfg.ops_per_session; ++op) {
        std::string sql;
        if (s < cfg.writer_sessions && op == cfg.ops_per_session / 2) {
          sql = WriterSql(s, 1'000);  // read-mostly: one write midway
        } else {
          const uint64_t r = rng.Uniform(100);
          size_t q;
          if (r < 30) {
            q = 0;
          } else if (r < 55) {
            q = 1;
          } else if (r < 70) {
            q = 2;
          } else {
            q = static_cast<size_t>(rng.Uniform(queries.size()));
          }
          sql = queries[q];
        }
        auto result = db->ExecuteSql(sql);
        if (!result.ok()) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - start;
  MMDB_CHECK_MSG(failures.load() == 0, "workload statement failed");
  return dt.count();
}

void ThroughputSection(Database* cached, Database* plain) {
  const std::vector<std::string> queries = WorkloadQueries();
  const int64_t total_ops =
      static_cast<int64_t>(cfg.sessions) * cfg.ops_per_session;

  const ReuseCache::Stats before = cached->reuse_cache()->stats();
  const double cached_wall = RunWorkload(cached, queries);
  const ReuseCache::Stats after = cached->reuse_cache()->stats();
  const double plain_wall = RunWorkload(plain, queries);

  const double cached_tps = double(total_ops) / cached_wall;
  const double plain_tps = double(total_ops) / plain_wall;
  const double speedup = plain_wall / cached_wall;
  const int64_t hits = after.hits - before.hits;
  const int64_t misses = after.misses - before.misses;
  const double hit_rate =
      hits + misses > 0 ? double(hits) / double(hits + misses) : 0.0;

  std::printf("== throughput: %d sessions x %d ops, %d writers, skewed reads "
              "over %zu queries ==\n",
              cfg.sessions, cfg.ops_per_session, cfg.writer_sessions,
              queries.size());
  std::printf("%-10s %12s %12s\n", "cache", "wall s", "tps");
  std::printf("%-10s %12.3f %12.0f\n", "off", plain_wall, plain_tps);
  std::printf("%-10s %12.3f %12.0f   (speedup %.2fx, required >= %.2fx)\n",
              "on", cached_wall, cached_tps, speedup, cfg.required_speedup);
  std::printf("hit rate %.3f (hits=%lld misses=%lld, required >= %.2f), "
              "invalidations=%lld evictions=%lld\n\n",
              hit_rate, static_cast<long long>(hits),
              static_cast<long long>(misses), cfg.required_hit_rate,
              static_cast<long long>(after.invalidations - before.invalidations),
              static_cast<long long>(after.evictions - before.evictions));

  // Post-run differential: concurrent interleavings done, both databases
  // must have converged to identical data and serve identical rows.
  for (const std::string& q : queries) {
    auto on = cached->ExecuteSql(q);
    auto off = plain->ExecuteSql(q);
    MMDB_CHECK(on.ok() && off.ok());
    MMDB_CHECK_MSG(RowBytes(on->relation) == RowBytes(off->relation),
                   "post-workload rows differ between cache-on and cache-off");
  }

  MMDB_CHECK_MSG(speedup >= cfg.required_speedup,
                 "reuse cache failed the throughput speedup bar");
  MMDB_CHECK_MSG(hit_rate >= cfg.required_hit_rate,
                 "reuse cache failed the hit-rate bar");
  JsonNum("throughput.plain_wall_s", plain_wall);
  JsonNum("throughput.cached_wall_s", cached_wall);
  JsonNum("throughput.plain_tps", plain_tps);
  JsonNum("throughput.cached_tps", cached_tps);
  JsonNum("throughput.speedup", speedup);
  JsonNum("throughput.required_speedup", cfg.required_speedup);
  JsonNum("throughput.hit_rate", hit_rate);
  JsonInt("throughput.hits", hits);
  JsonInt("throughput.misses", misses);
  JsonInt("throughput.total_ops", total_ops);
}

void WriteJson(const std::string& path, const std::string& metrics_json) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"result_cache\",\n  \"smoke\": %s,\n",
               cfg.smoke ? "true" : "false");
  for (const JsonEntry& e : json_entries) {
    std::fprintf(f, "  \"%s\": %s,\n", e.key.c_str(), e.value.c_str());
  }
  std::fprintf(f, "  \"metrics\": %s\n}\n", metrics_json.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace mmdb

int main(int argc, char** argv) {
  using namespace mmdb;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
      cfg.item_rows = 4'000;
      cfg.ord_rows = 12'000;
      cfg.ops_per_session = 120;
      cfg.writer_sessions = 2;
      cfg.diff_rounds = 2;
      // Small inputs put parse/latch overhead in the denominator; the
      // guard still requires the cache to win with margin.
      cfg.required_speedup = 1.3;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  Database cached = MakeCachedDb();
  Database plain;
  LoadTables(&cached);
  LoadTables(&plain);

  DifferentialSection(&cached, &plain);
  ThroughputSection(&cached, &plain);

  std::printf("%s\n", cached.reuse_cache()->DebugString().c_str());
  if (!json_path.empty()) WriteJson(json_path, cached.MetricsJson());
  std::printf("all result-cache machine checks passed.\n");
  return 0;
}
