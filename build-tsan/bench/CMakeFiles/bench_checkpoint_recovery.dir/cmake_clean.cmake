file(REMOVE_RECURSE
  "CMakeFiles/bench_checkpoint_recovery.dir/bench_checkpoint_recovery.cc.o"
  "CMakeFiles/bench_checkpoint_recovery.dir/bench_checkpoint_recovery.cc.o.d"
  "bench_checkpoint_recovery"
  "bench_checkpoint_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checkpoint_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
