#include "optimizer/executor.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "exec/batch.h"
#include "exec/parallel.h"
#include "optimizer/optimizer.h"

namespace mmdb {

namespace {

/// Applies a plan node's DOP to the context while the node itself runs
/// (children execute under their own nodes' settings). A node dop of 1
/// leaves the context untouched, so directly-invoked operators keep
/// whatever the caller configured.
class ScopedDop {
 public:
  ScopedDop(ExecContext* ctx, int dop) : ctx_(ctx), saved_(ctx->dop) {
    if (dop > 1) ctx_->dop = dop;
  }
  ~ScopedDop() { ctx_->dop = saved_; }

  ScopedDop(const ScopedDop&) = delete;
  ScopedDop& operator=(const ScopedDop&) = delete;

 private:
  ExecContext* ctx_;
  int saved_;
};

StatusOr<int> FindColumn(const std::vector<ColumnRef>& columns,
                         const ColumnRef& ref) {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == ref) return static_cast<int>(i);
  }
  return Status::NotFound("column " + ref.ToString() + " not in plan output");
}

StatusOr<Relation> ExecuteRec(const PlanNode& plan, const Catalog& catalog,
                              ExecContext* ctx, IndexProvider* indexes,
                              PlanRunTrace* trace);

StatusOr<Relation> ExecuteNode(const PlanNode& plan, const Catalog& catalog,
                               ExecContext* ctx, IndexProvider* indexes,
                               PlanRunTrace* trace) {
  switch (plan.kind) {
    case PlanNode::Kind::kScan: {
      MMDB_ASSIGN_OR_RETURN(const TableEntry* entry,
                            catalog.Lookup(plan.table));
      return *entry->relation;  // copy; tables stay resident
    }
    case PlanNode::Kind::kIndexScan: {
      MMDB_CHECK(!plan.predicates.empty());
      if (indexes != nullptr) {
        return indexes->IndexLookupAll(plan.table, plan.predicates[0], ctx);
      }
      // No provider (plan executed standalone): degrade to scan + filter.
      MMDB_ASSIGN_OR_RETURN(const TableEntry* entry,
                            catalog.Lookup(plan.table));
      MMDB_ASSIGN_OR_RETURN(
          int idx, entry->relation->schema().ColumnIndex(
                       plan.predicates[0].column));
      Relation out(entry->relation->schema());
      for (const Row& row : entry->relation->rows()) {
        ctx->clock->Comp();
        if (EvalPredicate(plan.predicates[0], row, idx)) out.Add(row);
      }
      return out;
    }
    case PlanNode::Kind::kFilter: {
      MMDB_ASSIGN_OR_RETURN(
          Relation in,
          ExecuteRec(*plan.child_left, catalog, ctx, indexes, trace));
      // Resolve each predicate once.
      std::vector<int> col_indexes;
      col_indexes.reserve(plan.predicates.size());
      for (const Predicate& p : plan.predicates) {
        MMDB_ASSIGN_OR_RETURN(
            int idx, FindColumn(plan.child_left->output_columns,
                                ColumnRef{p.table, p.column}));
        col_indexes.push_back(idx);
      }
      Relation out(in.schema());
      const int64_t rows_in = in.num_tuples();
      ScopedDop sd(ctx, plan.dop);
      const bool timing = ctx->metrics != nullptr && ctx->collect_wall_ns;
      const auto t0 = timing ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point();
      const auto publish_wall = [&] {
        if (!timing) return;
        ctx->metrics->Add(
            "exec.filter.wall_ns",
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
      };
      if (plan.vector) {
        // Vectorized filter (DESIGN.md §14): transpose kBatchRows-sized
        // chunks into column-major batches and run the compiled-predicate
        // kernel. Predicate j runs only over the rows that survived
        // predicates 0..j-1 (the selection vector shrinks between stages),
        // so the Comp totals equal the tuple loop's early-exit pattern, and
        // survivors emit in input order — identical bytes, identical
        // charges, at every DOP.
        const std::vector<CompiledPredicate> compiled =
            CompilePredicates(in.schema(), plan.predicates, col_indexes);
        const auto filter_range = [&](ExecContext* wctx, int64_t begin,
                                      int64_t end, std::vector<Row>* keep) {
          RowBatch batch;
          for (int64_t base = begin; base < end; base += kBatchRows) {
            const int64_t stop = std::min(end, base + kBatchRows);
            RowsToBatch(in, base, stop, &batch);
            BatchFilter::FilterBatch(compiled, wctx->clock, &batch);
            const int64_t live = batch.ActiveRows();
            for (int64_t k = 0; k < live; ++k) {
              keep->push_back(std::move(in.mutable_rows()[static_cast<size_t>(
                  base + batch.ActiveIndex(k))]));
            }
          }
        };
        if (ctx->dop > 1) {
          const std::vector<IndexRange> morsels =
              MorselRanges(in.num_tuples());
          std::vector<std::vector<Row>> kept(morsels.size());
          MMDB_RETURN_IF_ERROR(ParallelFor(
              ctx, static_cast<int64_t>(morsels.size()),
              [&](ExecContext* wctx, int, int64_t m) {
                const IndexRange range = morsels[static_cast<size_t>(m)];
                std::vector<Row>& local = kept[static_cast<size_t>(m)];
                filter_range(wctx, range.begin, range.end, &local);
                if (wctx->metrics != nullptr) {
                  wctx->metrics->Add("exec.filter.rows_in",
                                     range.end - range.begin);
                  wctx->metrics->Add("exec.filter.rows_out",
                                     static_cast<int64_t>(local.size()));
                }
                return Status::OK();
              }));
          for (std::vector<Row>& batch : kept) {
            for (Row& row : batch) {
              out.Add(std::move(row));
            }
          }
        } else {
          std::vector<Row> keep;
          filter_range(ctx, 0, in.num_tuples(), &keep);
          for (Row& row : keep) {
            out.Add(std::move(row));
          }
          if (ctx->metrics != nullptr) {
            ctx->metrics->Add("exec.filter.rows_in", rows_in);
            ctx->metrics->Add("exec.filter.rows_out", out.num_tuples());
          }
        }
        publish_wall();
        return out;
      }
      if (ctx->dop > 1) {
        // Morsel-parallel filter: per-morsel survivor buffers concatenated
        // in morsel order give the serial output order; the early-exit
        // comparison pattern per row is unchanged, so so are the charges.
        const std::vector<IndexRange> morsels =
            MorselRanges(in.num_tuples());
        std::vector<std::vector<Row>> kept(morsels.size());
        MMDB_RETURN_IF_ERROR(ParallelFor(
            ctx, static_cast<int64_t>(morsels.size()),
            [&](ExecContext* wctx, int, int64_t m) {
              std::vector<Row>& local = kept[static_cast<size_t>(m)];
              const IndexRange range = morsels[static_cast<size_t>(m)];
              for (int64_t r = range.begin; r < range.end; ++r) {
                Row& row = in.mutable_rows()[static_cast<size_t>(r)];
                bool keep = true;
                for (size_t i = 0; i < plan.predicates.size(); ++i) {
                  wctx->clock->Comp();
                  if (!EvalPredicate(plan.predicates[i], row,
                                     col_indexes[i])) {
                    keep = false;
                    break;
                  }
                }
                if (keep) local.push_back(std::move(row));
              }
              // Per-morsel (not per-row) batched counts on the worker's
              // private shard: each morsel is counted exactly once, so the
              // merged totals are identical at every DOP.
              if (wctx->metrics != nullptr) {
                wctx->metrics->Add("exec.filter.rows_in",
                                   range.end - range.begin);
                wctx->metrics->Add("exec.filter.rows_out",
                                   static_cast<int64_t>(local.size()));
              }
              return Status::OK();
            }));
        for (std::vector<Row>& batch : kept) {
          for (Row& row : batch) {
            out.Add(std::move(row));
          }
        }
        publish_wall();
        return out;
      }
      for (Row& row : in.mutable_rows()) {
        bool keep = true;
        for (size_t i = 0; i < plan.predicates.size(); ++i) {
          ctx->clock->Comp();
          if (!EvalPredicate(plan.predicates[i], row, col_indexes[i])) {
            keep = false;
            break;  // most selective first => cheap early exit (§4)
          }
        }
        if (keep) out.Add(std::move(row));
      }
      if (ctx->metrics != nullptr) {
        ctx->metrics->Add("exec.filter.rows_in", rows_in);
        ctx->metrics->Add("exec.filter.rows_out", out.num_tuples());
      }
      publish_wall();
      return out;
    }
    case PlanNode::Kind::kJoin: {
      MMDB_ASSIGN_OR_RETURN(
          Relation left,
          ExecuteRec(*plan.child_left, catalog, ctx, indexes, trace));
      MMDB_ASSIGN_OR_RETURN(
          Relation right,
          ExecuteRec(*plan.child_right, catalog, ctx, indexes, trace));
      MMDB_ASSIGN_OR_RETURN(
          int left_idx,
          FindColumn(plan.child_left->output_columns, plan.join.left));
      MMDB_ASSIGN_OR_RETURN(
          int right_idx,
          FindColumn(plan.child_right->output_columns, plan.join.right));
      const Relation& build = plan.build_is_right ? right : left;
      const Relation& probe = plan.build_is_right ? left : right;
      JoinSpec spec;
      spec.left_column = plan.build_is_right ? right_idx : left_idx;
      spec.right_column = plan.build_is_right ? left_idx : right_idx;
      ScopedDop sd(ctx, plan.dop);
      if (plan.vector && plan.algorithm == JoinAlgorithm::kHybridHash) {
        // Vectorized probe; delegates back to the row-major hybrid when the
        // build spills or the node runs parallel, so bytes and charges
        // match tuple execution unconditionally.
        return VectorHashJoin(build, probe, spec, ctx);
      }
      return ExecuteJoin(plan.algorithm, build, probe, spec, ctx);
    }
    case PlanNode::Kind::kProject: {
      MMDB_ASSIGN_OR_RETURN(
          Relation in,
          ExecuteRec(*plan.child_left, catalog, ctx, indexes, trace));
      std::vector<int> col_indexes;
      col_indexes.reserve(plan.projection.size());
      for (const ColumnRef& ref : plan.projection) {
        MMDB_ASSIGN_OR_RETURN(
            int idx, FindColumn(plan.child_left->output_columns, ref));
        col_indexes.push_back(idx);
      }
      Relation out(in.schema().Select(col_indexes));
      for (const Row& row : in.rows()) {
        Row projected;
        projected.reserve(col_indexes.size());
        for (int idx : col_indexes) {
          projected.push_back(row[static_cast<size_t>(idx)]);
        }
        out.Add(std::move(projected));
      }
      return out;
    }
  }
  return Status::Internal("unknown plan node kind");
}

/// Trace-aware recursion step: with no trace this is just ExecuteNode;
/// with a trace it brackets the node (children included — execution is
/// depth-first, so the window spans the whole subtree) with cost-clock,
/// disk and spill-counter snapshots. All snapshot reads happen at serial
/// points: any parallel region inside the node has completed and merged
/// its worker clocks/shards before the node returns.
StatusOr<Relation> ExecuteRec(const PlanNode& plan, const Catalog& catalog,
                              ExecContext* ctx, IndexProvider* indexes,
                              PlanRunTrace* trace) {
  if (trace == nullptr) {
    return ExecuteNode(plan, catalog, ctx, indexes, trace);
  }
  const CostCounters before = ctx->clock->counters();
  const double seconds_before = ctx->clock->Seconds();
  const SimulatedDisk::Stats disk_before = ctx->disk->stats();
  const int64_t spill_bytes_before =
      ctx->metrics != nullptr ? ctx->metrics->Get("exec.spill.bytes") : 0;
  const int64_t spill_parts_before =
      ctx->metrics != nullptr ? ctx->metrics->Get("exec.spill.partitions") : 0;
  const auto wall_before = std::chrono::steady_clock::now();
  StatusOr<Relation> out = ExecuteNode(plan, catalog, ctx, indexes, trace);
  if (!out.ok()) return out;
  const auto wall_after = std::chrono::steady_clock::now();
  const CostCounters after = ctx->clock->counters();
  const SimulatedDisk::Stats disk_after = ctx->disk->stats();
  PlanNodeRunStats& st = trace->nodes[&plan];
  st.rows_out = out->num_tuples();
  st.comparisons = after.comparisons - before.comparisons;
  st.hashes = after.hashes - before.hashes;
  st.page_reads = disk_after.reads - disk_before.reads;
  st.page_writes = disk_after.writes - disk_before.writes;
  if (ctx->metrics != nullptr) {
    st.spill_bytes = ctx->metrics->Get("exec.spill.bytes") - spill_bytes_before;
    st.spill_partitions =
        ctx->metrics->Get("exec.spill.partitions") - spill_parts_before;
  }
  st.cost_seconds = ctx->clock->Seconds() - seconds_before;
  st.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   wall_after - wall_before)
                   .count();
  return out;
}

}  // namespace

StatusOr<Relation> ExecutePlan(const PlanNode& plan, const Catalog& catalog,
                               ExecContext* ctx, IndexProvider* indexes,
                               PlanRunTrace* trace) {
  return ExecuteRec(plan, catalog, ctx, indexes, trace);
}

std::string RenderAnalyzedPlan(const PlanNode& plan,
                               const PlanRunTrace& trace) {
  return plan.ToString(
      0, [&trace](const PlanNode& node, int indent) -> std::string {
        auto it = trace.nodes.find(&node);
        if (it == trace.nodes.end()) return std::string();
        const PlanNodeRunStats& s = it->second;
        // Self cost/time = this node's inclusive window minus the
        // children's.
        double child_seconds = 0;
        int64_t child_wall_ns = 0;
        for (const PlanNode* child :
             {node.child_left.get(), node.child_right.get()}) {
          if (child == nullptr) continue;
          auto cit = trace.nodes.find(child);
          if (cit != trace.nodes.end()) {
            child_seconds += cit->second.cost_seconds;
            child_wall_ns += cit->second.wall_ns;
          }
        }
        char buf[320];
        std::snprintf(
            buf, sizeof(buf),
            "\n%s(actual rows=%lld comps=%lld hashes=%lld reads=%lld "
            "writes=%lld spill=%lldB/%lldp cost=%.3fs self=%.3fs "
            "wall=%.3fms self_wall=%.3fms)",
            std::string(static_cast<size_t>(indent) * 2 + 4, ' ').c_str(),
            static_cast<long long>(s.rows_out),
            static_cast<long long>(s.comparisons),
            static_cast<long long>(s.hashes),
            static_cast<long long>(s.page_reads),
            static_cast<long long>(s.page_writes),
            static_cast<long long>(s.spill_bytes),
            static_cast<long long>(s.spill_partitions),
            s.cost_seconds, s.cost_seconds - child_seconds,
            double(s.wall_ns) / 1e6,
            double(s.wall_ns - child_wall_ns) / 1e6);
        return std::string(buf);
      });
}

StatusOr<QueryResult> RunQuery(const Query& query, const Catalog& catalog,
                               const OptimizerOptions& options,
                               ExecContext* ctx, IndexProvider* indexes,
                               PlanRunTrace* trace) {
  Optimizer optimizer(&catalog, options);
  MMDB_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> plan,
                        optimizer.Optimize(query));
  MMDB_ASSIGN_OR_RETURN(Relation rel,
                        ExecutePlan(*plan, catalog, ctx, indexes, trace));
  QueryResult result{std::move(rel), trace != nullptr
                                         ? RenderAnalyzedPlan(*plan, *trace)
                                         : plan->ToString()};
  return result;
}

}  // namespace mmdb
