#ifndef MMDB_TXN_LOG_DEVICE_H_
#define MMDB_TXN_LOG_DEVICE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace mmdb {

/// One log disk: a sequence of fixed-size pages with a single arm, writing
/// one page per `write_latency` (the paper's 10 ms — "time to write one
/// 4096 byte page without a disk seek"). The latency is a real sleep so
/// multi-threaded group-commit benchmarks measure true wall-clock
/// throughput; tests set it to zero.
///
/// Pages survive SimulateCrash (they are "on disk"); only in-flight buffer
/// contents held elsewhere are lost.
class LogDevice {
 public:
  explicit LogDevice(
      int64_t page_size = 4096,
      std::chrono::microseconds write_latency = std::chrono::milliseconds(10))
      : page_size_(page_size), write_latency_(write_latency) {}

  LogDevice(const LogDevice&) = delete;
  LogDevice& operator=(const LogDevice&) = delete;

  int64_t page_size() const { return page_size_; }
  std::chrono::microseconds write_latency() const { return write_latency_; }

  /// Blocking write of one page (data shorter than page_size is padded).
  /// Serialized: two concurrent writers queue on the single arm.
  /// Returns the page number.
  int64_t WritePage(std::string data);

  /// Read-back for recovery.
  StatusOr<std::string> ReadPage(int64_t page_no) const;
  int64_t num_pages() const;
  int64_t bytes_written() const;

  /// Concatenated content of all pages (recovery scan convenience).
  std::string ReadAll() const;

 private:
  int64_t page_size_;
  std::chrono::microseconds write_latency_;
  mutable std::mutex mu_;
  std::vector<std::string> pages_;
  int64_t bytes_written_ = 0;
};

}  // namespace mmdb

#endif  // MMDB_TXN_LOG_DEVICE_H_
