#include "sim/stable_memory.h"

#include <cstring>

namespace mmdb {

Status StableMemory::Allocate(const std::string& name, int64_t size) {
  if (size < 0) return Status::InvalidArgument("negative region size");
  if (regions_.count(name)) return Status::AlreadyExists("region " + name);
  if (used_ + size > capacity_) {
    return Status::ResourceExhausted("stable memory full allocating " + name);
  }
  regions_[name].assign(static_cast<size_t>(size), 0);
  used_ += size;
  return Status::OK();
}

void StableMemory::Free(const std::string& name) {
  auto it = regions_.find(name);
  if (it == regions_.end()) return;
  used_ -= static_cast<int64_t>(it->second.size());
  regions_.erase(it);
}

Status StableMemory::Resize(const std::string& name, int64_t new_size) {
  auto it = regions_.find(name);
  if (it == regions_.end()) return Status::NotFound("region " + name);
  if (new_size < 0) return Status::InvalidArgument("negative region size");
  int64_t delta = new_size - static_cast<int64_t>(it->second.size());
  if (used_ + delta > capacity_) {
    return Status::ResourceExhausted("stable memory full resizing " + name);
  }
  it->second.resize(static_cast<size_t>(new_size), 0);
  used_ += delta;
  return Status::OK();
}

Status StableMemory::Write(const std::string& name, int64_t offset,
                           const void* data, int64_t size) {
  auto it = regions_.find(name);
  if (it == regions_.end()) return Status::NotFound("region " + name);
  if (offset < 0 || size < 0 ||
      offset + size > static_cast<int64_t>(it->second.size())) {
    return Status::OutOfRange("write beyond region " + name);
  }
  if (size == 0) return Status::OK();
  char* dst = it->second.data() + offset;
  std::memcpy(dst, data, static_cast<size_t>(size));
  if (injector_ != nullptr) {
    int64_t persist = size;
    // Bit flips mutate the copied bytes in place; stable memory never
    // reports transfer errors, so the status is always OK.
    MMDB_RETURN_IF_ERROR(injector_->OnWrite(FaultDevice::kStableMemory,
                                            /*entity=*/0, offset, dst, size,
                                            &persist));
  }
  return Status::OK();
}

std::vector<char>* StableMemory::Region(const std::string& name) {
  auto it = regions_.find(name);
  return it == regions_.end() ? nullptr : &it->second;
}

const std::vector<char>* StableMemory::Region(const std::string& name) const {
  auto it = regions_.find(name);
  return it == regions_.end() ? nullptr : &it->second;
}

}  // namespace mmdb
