#include "txn/partitioned_log.h"

#include "common/check.h"

namespace mmdb {

PartitionedLogManager::PartitionedLogManager(
    int num_partitions, int64_t page_size,
    std::chrono::microseconds write_latency, GroupCommitLogOptions options) {
  MMDB_CHECK(num_partitions >= 1);
  std::vector<LogDevice*> raw;
  for (int i = 0; i < num_partitions; ++i) {
    devices_.push_back(std::make_unique<LogDevice>(page_size, write_latency));
    raw.push_back(devices_.back().get());
  }
  log_ = std::make_unique<GroupCommitLog>(std::move(raw), options);
}

}  // namespace mmdb
