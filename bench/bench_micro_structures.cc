// Google-benchmark microbenchmarks for the substrates: index operations
// (AVL vs B+-tree vs hash — the CPU side of §2's Y factor), hash
// partitioning, replacement-selection run formation, and record codecs.
// Build in Release for meaningful numbers.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "exec/external_sort.h"
#include "exec/partitioner.h"
#include "index/avl_tree.h"
#include "index/btree.h"
#include "index/hash_index.h"
#include "storage/datagen.h"

namespace mmdb {
namespace {

std::vector<int64_t> ShuffledKeys(int64_t n, uint64_t seed = 42) {
  std::vector<int64_t> keys(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) keys[size_t(i)] = i;
  Random rng(seed);
  rng.Shuffle(&keys);
  return keys;
}

void BM_AvlInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto keys = ShuffledKeys(n);
  for (auto _ : state) {
    AvlTree tree;
    for (int64_t k : keys) tree.Insert(Value{k}, k);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AvlInsert)->Arg(10'000)->Arg(100'000);

void BM_AvlFind(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto keys = ShuffledKeys(n);
  AvlTree tree;
  for (int64_t k : keys) tree.Insert(Value{k}, k);
  Random rng(1);
  for (auto _ : state) {
    auto found = tree.Find(Value{keys[rng.Uniform(uint64_t(n))]});
    benchmark::DoNotOptimize(found.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AvlFind)->Arg(10'000)->Arg(100'000);

void BM_BTreeInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto keys = ShuffledKeys(n);
  for (auto _ : state) {
    SimulatedDisk disk(4096);
    BufferPool pool(&disk, 1 << 16);
    PageFile file(&disk, "bt");
    BPlusTree tree(&pool, &file, BTreeOptions{8, 8});
    char key[8], payload[8] = {};
    for (int64_t k : keys) {
      BPlusTree::EncodeInt64Key(k, key, 8);
      benchmark::DoNotOptimize(tree.Insert(key, payload).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeInsert)->Arg(10'000)->Arg(100'000);

void BM_BTreeFind(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto keys = ShuffledKeys(n);
  SimulatedDisk disk(4096);
  BufferPool pool(&disk, 1 << 16);
  PageFile file(&disk, "bt");
  BPlusTree tree(&pool, &file, BTreeOptions{8, 8});
  char key[8], payload[8] = {};
  for (int64_t k : keys) {
    BPlusTree::EncodeInt64Key(k, key, 8);
    (void)tree.Insert(key, payload);
  }
  Random rng(1);
  for (auto _ : state) {
    BPlusTree::EncodeInt64Key(keys[rng.Uniform(uint64_t(n))], key, 8);
    benchmark::DoNotOptimize(tree.Find(key, payload).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeFind)->Arg(10'000)->Arg(100'000);

void BM_HashIndexFind(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto keys = ShuffledKeys(n);
  HashIndex index;
  for (int64_t k : keys) index.Insert(Value{k}, k);
  Random rng(1);
  for (auto _ : state) {
    auto found = index.Find(Value{keys[rng.Uniform(uint64_t(n))]});
    benchmark::DoNotOptimize(found.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashIndexFind)->Arg(10'000)->Arg(100'000);

void BM_HashPartition(benchmark::State& state) {
  const int64_t parts = state.range(0);
  HashPartitioner partitioner(parts);
  Random rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        partitioner.PartitionOf(Value{int64_t(rng.NextUint64() >> 1)}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashPartition)->Arg(8)->Arg(512);

void BM_ReplacementSelection(benchmark::State& state) {
  GenOptions opts;
  opts.num_tuples = state.range(0);
  opts.tuple_width = 100;
  const Relation input = MakeKeyedRelation(opts);
  for (auto _ : state) {
    ExecEnv env(16);
    SortStats stats;
    auto stream = SortRelation(input, 0, &env.ctx, &stats);
    benchmark::DoNotOptimize(stats.runs);
    Row row;
    while (true) {
      auto more = (*stream)->Next(&row);
      if (!more.ok() || !*more) break;
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReplacementSelection)->Arg(20'000);

void BM_RowSerialize(benchmark::State& state) {
  Schema schema({Column::Int64("k"), Column::Char("s", 20),
                 Column::Double("d"), Column::Char("pad", 64)});
  Row row = {int64_t{42}, std::string("jones_000042"), 3.14,
             std::string("p")};
  std::vector<char> buf(static_cast<size_t>(schema.record_size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializeRow(schema, row, buf.data()).ok());
    Row back = DeserializeRow(schema, buf.data());
    benchmark::DoNotOptimize(back.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RowSerialize);

}  // namespace
}  // namespace mmdb
