#include "txn/log_device.h"

#include <thread>

#include "common/check.h"

namespace mmdb {

int64_t LogDevice::WritePage(std::string data) {
  MMDB_CHECK(static_cast<int64_t>(data.size()) <= page_size_);
  data.resize(static_cast<size_t>(page_size_), '\0');
  std::unique_lock<std::mutex> lock(mu_);
  // The arm is busy for the whole transfer; concurrent writers serialize
  // behind the mutex exactly like requests queueing at one disk.
  if (write_latency_.count() > 0) {
    std::this_thread::sleep_for(write_latency_);
  }
  pages_.push_back(std::move(data));
  bytes_written_ += page_size_;
  return static_cast<int64_t>(pages_.size()) - 1;
}

StatusOr<std::string> LogDevice::ReadPage(int64_t page_no) const {
  std::unique_lock<std::mutex> lock(mu_);
  if (page_no < 0 || page_no >= static_cast<int64_t>(pages_.size())) {
    return Status::OutOfRange("log page out of range");
  }
  return pages_[static_cast<size_t>(page_no)];
}

int64_t LogDevice::num_pages() const {
  std::unique_lock<std::mutex> lock(mu_);
  return static_cast<int64_t>(pages_.size());
}

int64_t LogDevice::bytes_written() const {
  std::unique_lock<std::mutex> lock(mu_);
  return bytes_written_;
}

std::string LogDevice::ReadAll() const {
  std::unique_lock<std::mutex> lock(mu_);
  std::string out;
  out.reserve(pages_.size() * static_cast<size_t>(page_size_));
  for (const std::string& p : pages_) out += p;
  return out;
}

}  // namespace mmdb
