#ifndef MMDB_OPTIMIZER_PLAN_H_
#define MMDB_OPTIMIZER_PLAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/join.h"
#include "optimizer/predicate.h"

namespace mmdb {

/// A (table, column) reference; the currency of query descriptions and
/// plan-node output descriptions.
struct ColumnRef {
  std::string table;
  std::string column;

  bool operator==(const ColumnRef& o) const {
    return table == o.table && column == o.column;
  }
  std::string ToString() const { return table + "." + column; }
};

/// One equi-join edge of the query graph.
struct JoinClause {
  ColumnRef left;
  ColumnRef right;
};

/// The declarative query the optimizer consumes:
///   SELECT select_columns (all columns when empty)
///   FROM tables
///   WHERE filters AND joins
/// Aggregation over the result is applied separately (HashAggregate) — §4's
/// point is precisely that hash aggregation composes freely on top because
/// it is insensitive to input order.
struct Query {
  std::vector<std::string> tables;
  std::vector<JoinClause> joins;
  std::vector<Predicate> filters;
  std::vector<ColumnRef> select_columns;
};

/// Physical plan tree produced by the optimizer.
struct PlanNode {
  enum class Kind { kScan, kIndexScan, kFilter, kJoin, kProject };

  Kind kind = Kind::kScan;

  // kScan / kIndexScan
  std::string table;
  // kIndexScan: the restriction served by the index (predicates[0]) and
  // which access method serves it.
  IndexKind index_kind = IndexKind::kHash;

  // kFilter (applied to child_left), ordered most selective first (§4).
  // kIndexScan: exactly one served predicate.
  std::vector<Predicate> predicates;

  // kJoin
  JoinAlgorithm algorithm = JoinAlgorithm::kHybridHash;
  JoinClause join;
  /// True when the optimizer swapped build/probe so the smaller input is
  /// the build side (the |R| <= |S| convention of §3).
  bool build_is_right = false;

  // kProject
  std::vector<ColumnRef> projection;

  /// Degree of parallelism for this operator (kJoin / kFilter; DESIGN.md
  /// §8). The executor scopes ExecContext::dop to this value while the
  /// operator itself runs; 1 means serial.
  int dop = 1;

  /// Vectorized execution for this operator (kJoin / kFilter; DESIGN.md
  /// §14): the executor runs the batch kernels instead of the tuple loop.
  /// Result bytes and cost-clock totals are identical either way — the
  /// vector path saves real time, not simulated cost.
  bool vector = false;

  std::unique_ptr<PlanNode> child_left;
  std::unique_ptr<PlanNode> child_right;

  /// Output description: position -> originating column.
  std::vector<ColumnRef> output_columns;

  // Optimizer estimates.
  double est_tuples = 0;
  double est_pages = 0;
  double est_cost_seconds = 0;  ///< cumulative W*CPU + IO

  /// Optimizer-internal DP bookkeeping (kJoin only): the winning split of
  /// this node's relation mask into child masks, recorded during dynamic
  /// programming and consumed when the final tree is rebuilt. Zero outside
  /// the optimizer; never meaningful in a finished plan.
  uint32_t dp_split_rest = 0;
  uint32_t dp_split_bit = 0;

  /// Multi-line indented rendering for logs and plan tests.
  std::string ToString(int indent = 0) const;

  /// Rendering with a per-node annotation appended after each line — the
  /// EXPLAIN ANALYZE renderer supplies actual run statistics this way. The
  /// annotator receives the node and its indent level (for continuation
  /// lines); its return value is inserted before the line's newline.
  using Annotator = std::function<std::string(const PlanNode&, int)>;
  std::string ToString(int indent, const Annotator& annotate) const;
};

}  // namespace mmdb

#endif  // MMDB_OPTIMIZER_PLAN_H_
