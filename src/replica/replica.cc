#include "replica/replica.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "txn/recoverable_store.h"

namespace mmdb {

Replica::Replica(Database* db) : db_(db) {}

Status Replica::ApplyRecords(const std::vector<LogRecord>& batch,
                             Lsn read_upto, Lsn shipped_horizon) {
  std::unique_lock<std::mutex> lock(mu_);
  if (promoted_) {
    return Status::FailedPrecondition("replica was promoted");
  }
  RecoverableStore* store = db_->recoverable_store();
  for (const LogRecord& rec : batch) {
    ++stats_.applied_records;
    switch (rec.type) {
      case LogRecordType::kBegin:
        inflight_[rec.txn_id];  // note the txn; updates may follow
        break;
      case LogRecordType::kUpdate:
        inflight_[rec.txn_id].push_back(
            PendingUpdate{rec.record_id, rec.new_value, rec.lsn});
        break;
      case LogRecordType::kCommit:
      case LogRecordType::kAbort: {
        // Install the transaction atomically. Aborts take the same path:
        // the primary logs compensation updates (old values, newest
        // first) before the kAbort record, so replaying the full buffer
        // in LSN order lands on the pre-image.
        auto it = inflight_.find(rec.txn_id);
        if (it != inflight_.end()) {
          for (const PendingUpdate& upd : it->second) {
            MMDB_RETURN_IF_ERROR(
                store->ApplyRecovery(upd.record_id, upd.value, upd.lsn));
          }
          inflight_.erase(it);
        }
        ++stats_.applied_txns;
        break;
      }
      case LogRecordType::kCheckpoint:
        break;  // backup end fences et al. — no state change
    }
  }
  // The shipper read [cursor, read_upto); everything sealed below
  // read_upto is now installed, so that is the committed-prefix horizon
  // reads may be served at. Buffered (unfinished) transactions are
  // invisible by construction.
  if (read_upto > applied_horizon_) applied_horizon_ = read_upto;
  if (shipped_horizon > shipped_horizon_) shipped_horizon_ = shipped_horizon;
  ++stats_.batches;
  stats_.applied_horizon = applied_horizon_;
  stats_.shipped_horizon = shipped_horizon_;
  stats_.inflight_txns = static_cast<int64_t>(inflight_.size());
  PublishMetricsLocked();
  return Status::OK();
}

StatusOr<std::vector<std::string>> Replica::SnapshotRead(
    const std::vector<int64_t>& record_ids, Lsn* horizon) {
  std::unique_lock<std::mutex> lock(mu_);
  RecoverableStore* store = db_->recoverable_store();
  std::vector<std::string> values;
  values.reserve(record_ids.size());
  for (int64_t id : record_ids) {
    std::string value;
    MMDB_RETURN_IF_ERROR(store->ReadRecord(id, &value));
    values.push_back(std::move(value));
  }
  if (horizon != nullptr) *horizon = applied_horizon_;
  return values;
}

Lsn Replica::LagLsn() const {
  std::unique_lock<std::mutex> lock(mu_);
  return shipped_horizon_ > applied_horizon_
             ? shipped_horizon_ - applied_horizon_
             : 0;
}

Lsn Replica::AppliedHorizon() const {
  std::unique_lock<std::mutex> lock(mu_);
  return applied_horizon_;
}

Replica::Stats Replica::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

Status Replica::Promote() {
  std::unique_lock<std::mutex> lock(mu_);
  if (promoted_) return Status::FailedPrecondition("already promoted");
  // In-flight buffers are transactions whose commit never shipped; on the
  // primary they were either rolled back or lost with it. The installed
  // committed prefix stands as the new primary's state.
  inflight_.clear();
  stats_.inflight_txns = 0;
  RecoverableStore* store = db_->recoverable_store();
  // Page-LSN stamps came from the PRIMARY's WAL; under this database's
  // own log they would overstate. Then persist the promoted image so the
  // new primary restarts from it rather than from an empty snapshot.
  store->ClearPageLsns();
  FirstUpdateTable* fut = db_->first_update_table();
  for (int64_t page : store->DirtyPages()) {
    MMDB_RETURN_IF_ERROR(store->CheckpointPage(page, fut, nullptr));
  }
  if (fut != nullptr) fut->Clear();
  promoted_ = true;
  PublishMetricsLocked();
  return Status::OK();
}

void Replica::PublishMetricsLocked() {
  MetricsRegistry* metrics = db_->metrics();
  metrics->Set("replica.applied_records", stats_.applied_records);
  metrics->Set("replica.applied_txns", stats_.applied_txns);
  metrics->Set("replica.horizon_lsn", applied_horizon_);
  metrics->Set("replica.lag_lsn", shipped_horizon_ > applied_horizon_
                                      ? shipped_horizon_ - applied_horizon_
                                      : 0);
}

}  // namespace mmdb
