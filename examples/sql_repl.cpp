// A tiny SQL shell over mmdb's multi-session server front end. Pipe
// statements in or use it interactively; a line may carry several
// semicolon-separated statements and each is executed in order — one
// statement's error is reported without aborting the rest of the batch.
//
//   $ ./build/examples/sql_repl
//   mmdb> CREATE TABLE emp (id INT64, name CHAR(20), salary DOUBLE)
//   mmdb> INSERT INTO emp VALUES (1, 'jones', 52000.0); SELECT * FROM emp
//   mmdb> UPDATE emp SET salary = 60000.0 WHERE id = 1
//   mmdb> BEGIN; SELECT name FROM emp WHERE salary > 50000; COMMIT
//
// `\demo` loads the paper's employee/department schema with sample data;
// `\cost` prints the simulated-time tally; `\metrics` dumps the metrics
// registry (server.sessions.* / server.admission.* included); `\cache`
// dumps the plan-fingerprint reuse cache (DESIGN.md §15 — the shell runs
// with a 32 MB cache, so repeating a SELECT serves it from the cache);
// `\quit` exits.
//
// Concurrent stress mode (DESIGN.md §10): `sql_repl --sessions N [ms]`
// (alias `--stress`) loads the demo data, opens N sessions and drives
// the 80/20 read/write mix from N client threads through the
// admission-controlled scheduler, then reports throughput and the
// admission counters.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "server/server.h"
#include "storage/datagen.h"

using namespace mmdb;  // NOLINT — example brevity

namespace {

void PrintRelation(const Relation& rel, int64_t limit = 20) {
  // Header.
  for (int c = 0; c < rel.schema().num_columns(); ++c) {
    std::printf("%s%s", c ? " | " : "", rel.schema().column(c).name.c_str());
  }
  std::printf("\n");
  int64_t shown = 0;
  for (const Row& row : rel.rows()) {
    if (shown++ >= limit) {
      std::printf("... (%lld rows total)\n",
                  static_cast<long long>(rel.num_tuples()));
      return;
    }
    std::printf("%s\n", RowToString(row).c_str());
  }
  std::printf("(%lld rows)\n", static_cast<long long>(rel.num_tuples()));
}

void LoadDemo(Database* db) {
  MMDB_CHECK(db->ExecuteSql("CREATE TABLE dept (dept_id INT64, "
                            "dname CHAR(16))")
                 .ok());
  const char* depts[] = {"engineering", "sales", "support", "finance"};
  for (int64_t d = 0; d < 4; ++d) {
    MMDB_CHECK(db->ExecuteSql("INSERT INTO dept VALUES (" +
                              std::to_string(d) + ", '" + depts[d] + "')")
                   .ok());
  }
  Relation emp = MakeEmployeeRelation(5000, 64, 42);
  MMDB_CHECK(db->CreateTable("emp", emp.schema()).ok());
  MMDB_CHECK(db->BulkLoad("emp", std::move(emp)).ok());
  std::printf("loaded: dept (4 rows), emp (5000 rows: emp_id, name, dept, "
              "salary, pad)\n");
  std::printf("try:  SELECT name, salary FROM emp WHERE name LIKE 'jones%%'\n");
  std::printf("      SELECT dname, COUNT(*), AVG(salary) FROM emp, dept "
              "WHERE emp.dept = dept.dept_id GROUP BY dname\n");
}

void PrintResult(const StatusOr<Database::SqlResult>& result) {
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  if (result->analyzed) {
    // EXPLAIN ANALYZE: annotated plan first, then the executed rows.
    std::printf("%s", result->plan_text.c_str());
    PrintRelation(result->relation);
  } else if (!result->plan_text.empty() &&
             result->relation.num_tuples() == 0 &&
             result->relation.schema().num_columns() == 0) {
    std::printf("%s", result->plan_text.c_str());  // EXPLAIN
  } else if (result->rows_affected > 0) {
    std::printf("ok, %lld rows\n",
                static_cast<long long>(result->rows_affected));
  } else if (result->relation.schema().num_columns() > 0) {
    PrintRelation(result->relation);
  } else {
    std::printf("ok\n");
  }
}

/// `--stress N [ms]`: N concurrent sessions over the demo tables, mixed
/// 80/20 SELECT/UPDATE on emp, closed loop, admission backpressure
/// honoured by retrying kOverloaded.
int RunStress(int sessions, int duration_ms) {
  Database db;
  LoadDemo(&db);
  Server::Options opts;
  opts.scheduler.num_workers = sessions;
  opts.scheduler.max_queue_depth = 4 * sessions;
  opts.max_sessions = sessions;
  Server server(&db, opts);

  std::printf("stress: %d sessions, %d ms, 80/20 read/write on emp\n",
              sessions, duration_ms);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> statements{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    clients.emplace_back([&, s] {
      auto session = server.OpenSession();
      MMDB_CHECK(session.ok());
      Random rng(static_cast<uint64_t>(7 + s));
      int64_t done = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int64_t id = static_cast<int64_t>(rng.Uniform(5000));
        const std::string sql =
            rng.Uniform(10) < 2
                ? "UPDATE emp SET salary = " + std::to_string(40000.0 + id) +
                      " WHERE emp_id = " + std::to_string(id)
                : "SELECT name, salary FROM emp WHERE emp_id = " +
                      std::to_string(id);
        auto result = (*session)->ExecuteSql(sql);
        if (result.ok()) {
          ++done;
        } else if (result.status().code() != StatusCode::kOverloaded) {
          std::fprintf(stderr, "statement failed: %s\n",
                       result.status().ToString().c_str());
          break;
        }
      }
      statements.fetch_add(done, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();
  server.Shutdown();
  std::printf("%lld statements in %d ms -> %.0f tps\n",
              static_cast<long long>(statements.load()), duration_ms,
              1000.0 * double(statements.load()) / double(duration_ms));
  std::printf("admitted=%lld rejected_queue_full=%lld "
              "rejected_session_cap=%lld\n",
              static_cast<long long>(
                  db.metrics()->Get("server.admission.admitted")),
              static_cast<long long>(
                  db.metrics()->Get("server.admission.rejected_queue_full")),
              static_cast<long long>(
                  db.metrics()->Get("server.admission.rejected_session_cap")));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--sessions") == 0 ||
                    std::strcmp(argv[1], "--stress") == 0)) {
    const int sessions = argc >= 3 ? std::atoi(argv[2]) : 8;
    const int duration_ms = argc >= 4 ? std::atoi(argv[3]) : 2000;
    return RunStress(sessions > 0 ? sessions : 8,
                     duration_ms > 0 ? duration_ms : 2000);
  }

  // The interactive shell runs with the reuse cache on (DESIGN.md §15):
  // repeat a SELECT and \cache shows it being served.
  Database::Options db_opts;
  db_opts.reuse_cache_bytes = 32ll << 20;
  Database db(db_opts);
  Server server(&db);
  auto opened = server.OpenSession();
  MMDB_CHECK(opened.ok());
  Session* session = *opened;

  std::string line;
  const bool tty = isatty(fileno(stdin));
  if (tty) {
    std::printf("mmdb SQL shell (server session #%lld) — \\demo loads "
                "sample data, \\cost shows simulated time, \\metrics dumps "
                "counters, \\cache dumps the reuse cache, \\quit exits; "
                "semicolons separate statements\n",
                static_cast<long long>(session->id()));
  }
  while (true) {
    if (tty) {
      std::printf("mmdb> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\demo") {
      LoadDemo(&db);
      continue;
    }
    if (line == "\\cost") {
      std::printf("%s\n", db.clock()->DebugString().c_str());
      continue;
    }
    if (line == "\\metrics") {
      std::printf("%s\n", db.MetricsJson().c_str());
      continue;
    }
    if (line == "\\cache") {
      if (db.reuse_cache() == nullptr) {
        std::printf("reuse cache disabled (Options::reuse_cache_bytes = 0)\n");
      } else {
        std::printf("%s\n", db.reuse_cache()->DebugString().c_str());
      }
      continue;
    }
    // One line may hold many statements; each runs even if an earlier one
    // failed (its error is printed in sequence instead).
    const std::vector<std::string> stmts = Session::SplitStatements(line);
    if (stmts.empty()) continue;
    for (size_t i = 0; i < stmts.size(); ++i) {
      if (stmts.size() > 1) {
        std::printf("-- statement %zu/%zu\n", i + 1, stmts.size());
      }
      PrintResult(session->ExecuteSql(stmts[i]));
    }
  }
  server.Shutdown();
  return 0;
}
