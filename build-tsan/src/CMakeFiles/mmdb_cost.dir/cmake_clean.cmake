file(REMOVE_RECURSE
  "CMakeFiles/mmdb_cost.dir/cost/access_cost.cc.o"
  "CMakeFiles/mmdb_cost.dir/cost/access_cost.cc.o.d"
  "CMakeFiles/mmdb_cost.dir/cost/join_cost.cc.o"
  "CMakeFiles/mmdb_cost.dir/cost/join_cost.cc.o.d"
  "libmmdb_cost.a"
  "libmmdb_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmdb_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
