// Join laboratory: run all four §3 join algorithms on the same workload at
// several memory sizes, verifying they agree and printing measured
// simulated time next to the paper's analytic prediction — a miniature
// Figure 1 you can play with.
//
//   $ ./build/examples/join_lab [tuples_per_relation]

#include <cstdio>
#include <cstdlib>

#include "cost/join_cost.h"
#include "exec/join.h"
#include "storage/datagen.h"

using namespace mmdb;  // NOLINT — example brevity

int main(int argc, char** argv) {
  const int64_t tuples = argc > 1 ? std::atoll(argv[1]) : 40'000;

  GenOptions r_opts;
  r_opts.num_tuples = tuples;
  r_opts.tuple_width = 100;  // ~40 tuples per 4K page, as in Table 2
  r_opts.seed = 1;
  GenOptions s_opts = r_opts;
  s_opts.distribution = KeyDistribution::kUniform;
  s_opts.key_range = tuples;
  s_opts.seed = 2;

  const Relation r = MakeKeyedRelation(r_opts);
  const Relation s = MakeKeyedRelation(s_opts);
  const JoinSpec spec{0, 0};
  const int64_t r_pages = r.NumPages(4096);

  std::printf("R = S = %lld tuples (%lld pages)\n",
              static_cast<long long>(tuples),
              static_cast<long long>(r_pages));
  std::printf("%-8s %-12s %10s %12s %12s %8s\n", "ratio", "algorithm",
              "tuples", "measured(s)", "model(s)", "extra");

  int64_t reference = -1;
  for (double ratio : {0.1, 0.3, 0.5, 0.7, 1.1}) {
    const int64_t memory =
        static_cast<int64_t>(ratio * double(r_pages) * 1.2);
    for (JoinAlgorithm alg :
         {JoinAlgorithm::kSortMerge, JoinAlgorithm::kSimpleHash,
          JoinAlgorithm::kGraceHash, JoinAlgorithm::kHybridHash}) {
      ExecEnv env(memory);
      JoinRunStats stats;
      StatusOr<Relation> out = ExecuteJoin(alg, r, s, spec, &env.ctx, &stats);
      MMDB_CHECK(out.ok());
      if (reference < 0) reference = out->num_tuples();
      MMDB_CHECK_MSG(out->num_tuples() == reference,
                     "algorithms disagree on the join result!");

      JoinWorkload w;
      w.r_pages = r_pages;
      w.s_pages = s.NumPages(4096);
      w.r_tuples = r.num_tuples();
      w.s_tuples = s.num_tuples();
      w.memory_pages = memory;
      const AllJoinCosts model =
          ComputeAllJoinCosts(w, CostParams::Table2Defaults());
      const double predicted =
          alg == JoinAlgorithm::kSortMerge   ? model.sort_merge.total_seconds
          : alg == JoinAlgorithm::kSimpleHash ? model.simple_hash.total_seconds
          : alg == JoinAlgorithm::kGraceHash  ? model.grace_hash.total_seconds
                                              : model.hybrid_hash.total_seconds;
      char extra[64] = "";
      if (alg == JoinAlgorithm::kSimpleHash) {
        std::snprintf(extra, sizeof(extra), "A=%lld",
                      static_cast<long long>(stats.passes));
      } else if (alg == JoinAlgorithm::kHybridHash) {
        std::snprintf(extra, sizeof(extra), "q=%.2f B=%lld", stats.q,
                      static_cast<long long>(stats.partitions));
      }
      std::printf("%-8.2f %-12s %10lld %12.2f %12.2f %8s\n", ratio,
                  JoinAlgorithmName(alg).data(),
                  static_cast<long long>(out->num_tuples()),
                  env.clock.Seconds(), predicted, extra);
    }
  }
  std::printf("\nall four algorithms produced identical results (%lld "
              "tuples) at every memory size\n",
              static_cast<long long>(reference));
  return 0;
}
