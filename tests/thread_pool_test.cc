#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

namespace mmdb {
namespace {

TEST(ThreadPoolTest, StartupAndShutdownIdle) {
  // A pool that never receives work must still construct and join cleanly.
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadExecutesInSubmissionOrder) {
  // FIFO dispatch: with one worker, execution order == submission order.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFutureAndWorkerSurvives) {
  ThreadPool pool(2);
  std::future<void> bad =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still process new work.
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([&] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, ReentrantSubmitFromInsideATask) {
  // A running task may submit follow-up work to the same pool without
  // deadlocking — the queue lock is not held while tasks run.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::future<void> inner_future;
  std::future<void> outer = pool.Submit([&] {
    inner_future = pool.Submit([&] { ran.fetch_add(1); });
    ran.fetch_add(1);
  });
  outer.get();
  inner_future.get();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 30; ++i) {
      // Small sleep so most tasks are still queued at destruction time.
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      });
    }
  }  // ~ThreadPool: finishes every already-submitted task, then joins.
  EXPECT_EQ(ran.load(), 30);
}

TEST(ThreadPoolTest, SharedPoolIsStableAndAmplySized) {
  ThreadPool* a = ThreadPool::Shared();
  ThreadPool* b = ThreadPool::Shared();
  EXPECT_EQ(a, b);
  // Never below 8 so DOP-8 gets real threads even on small machines.
  EXPECT_GE(a->num_threads(), 8);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(a->Submit([&] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, ManyConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  std::mutex mu;
  std::vector<std::future<void>> futures;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        std::future<void> f = pool.Submit([&] { ran.fetch_add(1); });
        std::lock_guard<std::mutex> lock(mu);
        futures.push_back(std::move(f));
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 100);
}

}  // namespace
}  // namespace mmdb
