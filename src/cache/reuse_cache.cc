#include "cache/reuse_cache.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/check.h"
#include "optimizer/predicate.h"

namespace mmdb {

namespace {

std::string_view AlgTag(JoinAlgorithm a) {
  switch (a) {
    case JoinAlgorithm::kNestedLoop: return "nl";
    case JoinAlgorithm::kSortMerge: return "sm";
    case JoinAlgorithm::kSimpleHash: return "sh";
    case JoinAlgorithm::kGraceHash: return "gh";
    case JoinAlgorithm::kHybridHash: return "hh";
  }
  return "?";
}

std::string_view IndexTag(IndexKind k) {
  switch (k) {
    case IndexKind::kAvl: return "avl";
    case IndexKind::kBTree: return "bt";
    case IndexKind::kHash: return "h";
  }
  return "?";
}

}  // namespace

ReuseCache::ReuseCache() : ReuseCache(Options()) {}

ReuseCache::ReuseCache(Options options) : options_(options) {}

void ReuseCache::SetEnvTag(std::string tag) { env_tag_ = std::move(tag); }

uint64_t ReuseCache::TableVersion(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = versions_.find(table);
  return it == versions_.end() ? 0 : it->second;
}

void ReuseCache::InvalidateTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  ++versions_[table];
  ++stats_.invalidations;
  auto it = by_table_.find(table);
  if (it == by_table_.end()) return;
  // EraseLocked mutates by_table_; detach the key set first.
  const std::set<std::string> keys = std::move(it->second);
  by_table_.erase(it);
  for (const std::string& key : keys) {
    if (entries_.count(key)) {
      EraseLocked(key);
      ++stats_.invalidated_entries;
    }
  }
}

std::string ReuseCache::CanonValue(const Value& v) {
  char buf[64];
  switch (TypeOf(v)) {
    case ValueType::kInt64:
      std::snprintf(buf, sizeof(buf), "i:%lld",
                    static_cast<long long>(std::get<int64_t>(v)));
      return buf;
    case ValueType::kDouble:
      std::snprintf(buf, sizeof(buf), "d:%.17g", std::get<double>(v));
      return buf;
    case ValueType::kString: {
      const std::string& s = std::get<std::string>(v);
      return "s:" + std::to_string(s.size()) + ":" + s;
    }
  }
  return "?";
}

int ReuseCache::ResolvePos(const std::vector<ColumnRef>& columns,
                           const ColumnRef& ref) {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == ref) return static_cast<int>(i);
  }
  int found = -1;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].column == ref.column) {
      if (found >= 0) return -1;  // ambiguous: don't guess
      found = static_cast<int>(i);
    }
  }
  return found;
}

namespace {

/// Canonical predicate: column position (falling back to the raw column
/// name when the position cannot be resolved), operator, exact literal.
std::string CanonPred(const Predicate& p,
                      const std::vector<ColumnRef>& columns) {
  const int pos = ReuseCache::ResolvePos(columns, ColumnRef{p.table, p.column});
  std::string out = pos >= 0 ? "#" + std::to_string(pos) : "$" + p.column;
  out += CmpOpName(p.op);
  out += ReuseCache::CanonValue(p.literal);
  return out;
}

}  // namespace

std::string ReuseCache::CanonJoin(JoinAlgorithm algorithm,
                                  const std::string& build_fp,
                                  const std::string& probe_fp,
                                  int build_key_pos, int probe_key_pos) const {
  std::string out = "join(";
  out += AlgTag(algorithm);
  out += ",";
  out += env_tag_;
  out += ",b#" + std::to_string(build_key_pos);
  out += ",p#" + std::to_string(probe_key_pos);
  out += ")(" + build_fp + ")(" + probe_fp + ")";
  return out;
}

void ReuseCache::FingerprintPlan(const PlanNode& root, Fingerprints* out) const {
  // Recursion writes canonical + table deps for every node.
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& node) {
    std::string canon;
    std::vector<std::string> tables;
    switch (node.kind) {
      case PlanNode::Kind::kScan: {
        canon = "scan(" + node.table + "@" +
                std::to_string(TableVersion(node.table)) + ")";
        tables.push_back(node.table);
        break;
      }
      case PlanNode::Kind::kIndexScan: {
        canon = "ix(" + node.table + "@" +
                std::to_string(TableVersion(node.table)) + ",";
        canon += IndexTag(node.index_kind);
        canon += ",";
        if (!node.predicates.empty()) {
          canon += CanonPred(node.predicates[0], node.output_columns);
        }
        canon += ")";
        tables.push_back(node.table);
        break;
      }
      case PlanNode::Kind::kFilter: {
        MMDB_CHECK(node.child_left != nullptr);
        walk(*node.child_left);
        canon = "fil(";
        for (size_t i = 0; i < node.predicates.size(); ++i) {
          if (i > 0) canon += ";";
          canon += CanonPred(node.predicates[i],
                             node.child_left->output_columns);
        }
        canon += ")(" + out->canonical[node.child_left.get()] + ")";
        tables = out->tables[node.child_left.get()];
        break;
      }
      case PlanNode::Kind::kJoin: {
        MMDB_CHECK(node.child_left != nullptr && node.child_right != nullptr);
        walk(*node.child_left);
        walk(*node.child_right);
        const PlanNode& build =
            node.build_is_right ? *node.child_right : *node.child_left;
        const PlanNode& probe =
            node.build_is_right ? *node.child_left : *node.child_right;
        const ColumnRef& build_col =
            node.build_is_right ? node.join.right : node.join.left;
        const ColumnRef& probe_col =
            node.build_is_right ? node.join.left : node.join.right;
        canon = CanonJoin(node.algorithm, out->canonical[&build],
                          out->canonical[&probe],
                          ResolvePos(build.output_columns, build_col),
                          ResolvePos(probe.output_columns, probe_col));
        tables = out->tables[node.child_left.get()];
        const auto& rt = out->tables[node.child_right.get()];
        tables.insert(tables.end(), rt.begin(), rt.end());
        break;
      }
      case PlanNode::Kind::kProject: {
        MMDB_CHECK(node.child_left != nullptr);
        walk(*node.child_left);
        canon = "proj(";
        for (size_t i = 0; i < node.projection.size(); ++i) {
          if (i > 0) canon += ",";
          const int pos =
              ResolvePos(node.child_left->output_columns, node.projection[i]);
          canon += pos >= 0 ? "#" + std::to_string(pos)
                            : "$" + node.projection[i].column;
        }
        canon += ")(" + out->canonical[node.child_left.get()] + ")";
        tables = out->tables[node.child_left.get()];
        break;
      }
    }
    std::sort(tables.begin(), tables.end());
    tables.erase(std::unique(tables.begin(), tables.end()), tables.end());
    out->canonical[&node] = std::move(canon);
    out->tables[&node] = std::move(tables);
  };
  walk(root);
}

bool ReuseCache::HasResult(const std::string& fp) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fp);
  return it != entries_.end() && it->second.result != nullptr;
}

std::shared_ptr<const Relation> ReuseCache::LookupResult(
    const std::string& fp) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fp);
  if (it == entries_.end() || it->second.result == nullptr) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  it->second.tick = ++tick_;
  return it->second.result;
}

bool ReuseCache::InstallResult(const std::string& fp,
                               const std::vector<std::string>& tables,
                               const Relation& result, double cost_seconds) {
  Entry entry;
  entry.result = std::make_shared<const Relation>(result);
  entry.tables = tables;
  entry.bytes = ApproxRelationBytes(result);
  entry.cost_seconds = cost_seconds;
  std::lock_guard<std::mutex> lock(mu_);
  return AdmitLocked(fp, std::move(entry));
}

std::string ReuseCache::BuildKey(const std::string& build_fp, int key_column) {
  return "build#" + std::to_string(key_column) + "(" + build_fp + ")";
}

bool ReuseCache::HasBuild(const std::string& build_fp, int key_column) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(BuildKey(build_fp, key_column));
  return it != entries_.end() && it->second.build != nullptr;
}

std::shared_ptr<const CachedBuild> ReuseCache::LookupBuild(
    const std::string& build_fp, int key_column) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(BuildKey(build_fp, key_column));
  if (it == entries_.end() || it->second.build == nullptr) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  ++stats_.build_hits;
  it->second.tick = ++tick_;
  return it->second.build;
}

bool ReuseCache::InstallBuild(const std::string& build_fp, int key_column,
                              const std::vector<std::string>& tables,
                              std::shared_ptr<const CachedBuild> build,
                              double cost_seconds) {
  Entry entry;
  // A chained hash table costs more than the raw rows; 1.5x approximates
  // the bucket-vector overhead without walking the buckets.
  entry.bytes = static_cast<int64_t>(
      1.5 * double(build->rows) *
      double(std::max<int64_t>(32, build->schema.record_size())));
  entry.build = std::move(build);
  entry.tables = tables;
  entry.cost_seconds = cost_seconds;
  std::lock_guard<std::mutex> lock(mu_);
  return AdmitLocked(BuildKey(build_fp, key_column), std::move(entry));
}

bool ReuseCache::AdmitLocked(const std::string& key, Entry entry) {
  if (options_.budget_bytes <= 0) return false;
  const int64_t cap = options_.max_entry_bytes > 0
                          ? options_.max_entry_bytes
                          : options_.budget_bytes / 4;
  if (entry.cost_seconds < options_.min_cost_seconds || entry.bytes > cap ||
      entry.bytes > options_.budget_bytes) {
    ++stats_.rejected;
    return false;
  }
  // Cost/size admission against the eviction pool: evicting strictly
  // denser entries to fit this one would be a net loss, so refuse instead.
  const double density =
      entry.cost_seconds / double(std::max<int64_t>(1, entry.bytes));
  int64_t reclaimable = options_.budget_bytes - bytes_;
  for (const auto& [k, e] : entries_) {
    const double d = e.cost_seconds / double(std::max<int64_t>(1, e.bytes));
    if (d < density) reclaimable += e.bytes;
  }
  if (reclaimable < entry.bytes) {
    ++stats_.rejected;
    return false;
  }
  if (entries_.count(key)) EraseLocked(key);  // refresh in place
  entry.tick = ++tick_;
  bytes_ += entry.bytes;
  for (const std::string& t : entry.tables) by_table_[t].insert(key);
  entries_[key] = std::move(entry);
  ++stats_.installs;
  // Evict worst-density (oldest-tick tie-break) entries until the budget
  // holds. The new entry is protected: admission proved the math above.
  while (bytes_ > options_.budget_bytes) {
    std::string victim;
    double worst = std::numeric_limits<double>::infinity();
    uint64_t worst_tick = std::numeric_limits<uint64_t>::max();
    for (const auto& [k, e] : entries_) {
      if (k == key) continue;
      const double d = e.cost_seconds / double(std::max<int64_t>(1, e.bytes));
      if (d < worst || (d == worst && e.tick < worst_tick)) {
        worst = d;
        worst_tick = e.tick;
        victim = k;
      }
    }
    if (victim.empty()) break;
    EraseLocked(victim);
    ++stats_.evictions;
  }
  return true;
}

void ReuseCache::EraseLocked(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  bytes_ -= it->second.bytes;
  for (const std::string& t : it->second.tables) {
    auto bt = by_table_.find(t);
    if (bt != by_table_.end()) {
      bt->second.erase(key);
      if (bt->second.empty()) by_table_.erase(bt);
    }
  }
  entries_.erase(it);
}

ReuseCache::Stats ReuseCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.bytes = bytes_;
  s.entries = static_cast<int64_t>(entries_.size());
  return s;
}

std::string ReuseCache::DebugString() const {
  const Stats s = stats();
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "reuse cache: %lld entries, %lld bytes (budget %lld)\n"
      "  hits=%lld (build=%lld) misses=%lld hit_rate=%.1f%%\n"
      "  installs=%lld rejected=%lld evictions=%lld\n"
      "  invalidations=%lld (entries dropped=%lld)",
      static_cast<long long>(s.entries), static_cast<long long>(s.bytes),
      static_cast<long long>(options_.budget_bytes),
      static_cast<long long>(s.hits), static_cast<long long>(s.build_hits),
      static_cast<long long>(s.misses),
      s.hits + s.misses > 0 ? 100.0 * double(s.hits) /
                                  double(s.hits + s.misses)
                            : 0.0,
      static_cast<long long>(s.installs), static_cast<long long>(s.rejected),
      static_cast<long long>(s.evictions),
      static_cast<long long>(s.invalidations),
      static_cast<long long>(s.invalidated_entries));
  return buf;
}

int64_t ReuseCache::ApproxRelationBytes(const Relation& rel) {
  int64_t bytes = static_cast<int64_t>(sizeof(Relation));
  for (const Row& row : rel.rows()) {
    bytes += static_cast<int64_t>(sizeof(Row)) +
             static_cast<int64_t>(row.size() * sizeof(Value));
    for (const Value& v : row) {
      if (TypeOf(v) == ValueType::kString) {
        bytes += static_cast<int64_t>(std::get<std::string>(v).capacity());
      }
    }
  }
  return bytes;
}

}  // namespace mmdb
