#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "cost/join_cost.h"
#include "exec/join.h"
#include "exec/partitioner.h"
#include "storage/heap_file.h"

namespace mmdb {

namespace {

using exec_internal::JoinHashTable;

StatusOr<Relation> HybridHashJoinImpl(const Relation& r, const Relation& s,
                                      const JoinSpec& spec, ExecContext* ctx,
                                      JoinRunStats* stats, int depth);

/// Joins a spilled (R_b, S_b) pair. If R_b's hash table fits, builds and
/// probes directly; otherwise applies the hybrid join recursively (§3.3:
/// "if we err slightly we can always apply the hybrid hash join
/// recursively, thereby adding an extra pass for the overflow tuples").
Status JoinSpilledPair(std::vector<Row> r_rows, std::vector<Row> s_rows,
                       const Schema& rs, const Schema& ss,
                       const JoinSpec& spec, ExecContext* ctx,
                       JoinRunStats* stats, int depth, Relation* out) {
  const int64_t capacity =
      std::max<int64_t>(1, ctx->TuplesInPages(rs, ctx->memory_pages));
  if (static_cast<int64_t>(r_rows.size()) <= capacity ||
      depth >= ctx->max_recursion_depth) {
    JoinHashTable table(spec.left_column, ctx->clock);
    for (Row& row : r_rows) {
      ctx->clock->Hash();
      ctx->clock->Move();
      table.Insert(std::move(row));
    }
    for (const Row& row : s_rows) {
      ctx->clock->Hash();
      table.Probe(row[static_cast<size_t>(spec.right_column)],
                  [&](const Row& r_row) {
                    exec_internal::EmitJoined(r_row, row, out);
                  });
    }
    return Status::OK();
  }
  // Recursive application with a fresh hash function (level = depth + 1).
  Relation r_rel(rs, std::move(r_rows));
  Relation s_rel(ss, std::move(s_rows));
  JoinRunStats child_stats;
  MMDB_ASSIGN_OR_RETURN(
      Relation child,
      HybridHashJoinImpl(r_rel, s_rel, spec, ctx, &child_stats, depth + 1));
  if (stats != nullptr) {
    stats->recursion_depth =
        std::max(stats->recursion_depth, child_stats.recursion_depth);
  }
  for (Row& row : child.mutable_rows()) {
    out->Add(std::move(row));
  }
  return Status::OK();
}

StatusOr<Relation> HybridHashJoinImpl(const Relation& r, const Relation& s,
                                      const JoinSpec& spec, ExecContext* ctx,
                                      JoinRunStats* stats, int depth) {
  const Schema& rs = r.schema();
  const Schema& ss = s.schema();
  Relation out(Schema::Concat(rs, ss));
  if (stats != nullptr) stats->recursion_depth = depth;

  const int64_t r_pages = std::max<int64_t>(1, r.NumPages(ctx->page_size()));
  HybridSplit split =
      SolveHybridSplit(r_pages, ctx->memory_pages, ctx->fudge);
  if (split.q < 1.0) {
    // The analytic q fills memory EXACTLY, so a positive fluctuation of the
    // hash split (~sqrt(n) tuples, §3.3's central-limit argument) would
    // overflow R_0 and force the expensive save-S_0 fallback. Shave q by
    // 4 sigma of the binomial split so overflow is a true skew signal, not
    // noise.
    const double expected =
        split.q * double(std::max<int64_t>(1, r.num_tuples()));
    split.q = std::max(0.0, split.q * (1.0 - 4.0 / std::sqrt(expected + 1.0)));
  }
  const int64_t b = split.q >= 1.0 ? 0 : split.num_partitions;
  if (stats != nullptr) {
    stats->q = split.q;
    stats->partitions = b;
  }

  // Phase 1 over R: partition 0 builds in memory, 1..B spill.
  // With a single output buffer the writes are sequential (§3.8 footnote).
  const IoKind spill_kind = b <= 1 ? IoKind::kSequential : IoKind::kRandom;
  HashPartitioner partitioner = HashPartitioner::Hybrid(
      split.q, b, static_cast<uint32_t>(depth));

  JoinHashTable resident(spec.left_column, ctx->clock);
  const int64_t resident_capacity = std::max<int64_t>(
      1, ctx->TuplesInPages(rs, std::max<int64_t>(1, ctx->memory_pages - b)));
  std::unique_ptr<PartitionWriterSet> r_spill;
  std::unique_ptr<PartitionWriterSet> r_overflow;
  if (b > 0) {
    r_spill = std::make_unique<PartitionWriterSet>(ctx, rs, b, spill_kind,
                                                   "hybrid_r");
  }

  for (const Row& row : r.rows()) {
    ctx->clock->Hash();
    const Value& key = row[static_cast<size_t>(spec.left_column)];
    const int64_t p = partitioner.PartitionOf(key);
    if (p == 0) {
      if (resident.size() < resident_capacity) {
        ctx->clock->Move();
        resident.Insert(row);
      } else {
        // R_0 overflow: siphon the excess to its own file; matching S_0
        // tuples are saved below and the pair joins recursively.
        if (r_overflow == nullptr) {
          r_overflow = std::make_unique<PartitionWriterSet>(
              ctx, rs, 1, spill_kind, "hybrid_r_ovf");
        }
        MMDB_RETURN_IF_ERROR(r_overflow->Append(0, row));
      }
    } else {
      MMDB_RETURN_IF_ERROR(r_spill->Append(p - 1, row));
    }
  }
  if (r_spill != nullptr) MMDB_RETURN_IF_ERROR(r_spill->FinishAll());
  if (r_overflow != nullptr) MMDB_RETURN_IF_ERROR(r_overflow->FinishAll());

  // Phase 1 over S: bucket 0 probes immediately; the rest spills.
  std::unique_ptr<PartitionWriterSet> s_spill;
  std::unique_ptr<PartitionWriterSet> s0_saved;
  if (b > 0) {
    s_spill = std::make_unique<PartitionWriterSet>(ctx, ss, b, spill_kind,
                                                   "hybrid_s");
  }
  if (r_overflow != nullptr) {
    s0_saved = std::make_unique<PartitionWriterSet>(ctx, ss, 1, spill_kind,
                                                    "hybrid_s0_saved");
  }
  for (const Row& row : s.rows()) {
    ctx->clock->Hash();
    const Value& key = row[static_cast<size_t>(spec.right_column)];
    const int64_t p = partitioner.PartitionOf(key);
    if (p == 0) {
      resident.Probe(key, [&](const Row& r_row) {
        exec_internal::EmitJoined(r_row, row, &out);
      });
      if (s0_saved != nullptr) {
        MMDB_RETURN_IF_ERROR(s0_saved->Append(0, row));
      }
    } else {
      MMDB_RETURN_IF_ERROR(s_spill->Append(p - 1, row));
    }
  }
  if (s_spill != nullptr) MMDB_RETURN_IF_ERROR(s_spill->FinishAll());
  if (s0_saved != nullptr) MMDB_RETURN_IF_ERROR(s0_saved->FinishAll());

  // Phase 2: join each spilled pair.
  if (b > 0) {
    auto r_parts = r_spill->Release();
    auto s_parts = s_spill->Release();
    for (int64_t i = 0; i < b; ++i) {
      const auto& rp = r_parts[static_cast<size_t>(i)];
      const auto& sp = s_parts[static_cast<size_t>(i)];
      if (rp.records == 0 || sp.records == 0) {
        ctx->disk->DeleteFile(rp.file);
        ctx->disk->DeleteFile(sp.file);
        continue;
      }
      MMDB_ASSIGN_OR_RETURN(std::vector<Row> r_rows,
                            ReadAndDeletePartition(ctx, rs, rp));
      MMDB_ASSIGN_OR_RETURN(std::vector<Row> s_rows,
                            ReadAndDeletePartition(ctx, ss, sp));
      MMDB_RETURN_IF_ERROR(JoinSpilledPair(std::move(r_rows),
                                           std::move(s_rows), rs, ss, spec,
                                           ctx, stats, depth, &out));
    }
  }

  // Overflow of the resident partition, if any.
  if (r_overflow != nullptr) {
    auto ovf = r_overflow->Release();
    auto saved = s0_saved->Release();
    MMDB_ASSIGN_OR_RETURN(std::vector<Row> r_rows,
                          ReadAndDeletePartition(ctx, rs, ovf[0]));
    MMDB_ASSIGN_OR_RETURN(std::vector<Row> s_rows,
                          ReadAndDeletePartition(ctx, ss, saved[0]));
    MMDB_RETURN_IF_ERROR(JoinSpilledPair(std::move(r_rows), std::move(s_rows),
                                         rs, ss, spec, ctx, stats, depth,
                                         &out));
  }

  if (stats != nullptr) stats->output_tuples = out.num_tuples();
  return out;
}

}  // namespace

StatusOr<Relation> HybridHashJoin(const Relation& r, const Relation& s,
                                  const JoinSpec& spec, ExecContext* ctx,
                                  JoinRunStats* stats) {
  return HybridHashJoinImpl(r, s, spec, ctx, stats, 0);
}

}  // namespace mmdb
