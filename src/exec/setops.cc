#include "exec/setops.h"

#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/hash.h"
#include "exec/partitioner.h"

namespace mmdb {

namespace {

constexpr int kMaxDepth = 4;

uint64_t HashWholeRow(const Row& row) {
  uint64_t h = 0x5E7C0DEull;
  for (const Value& v : row) h = HashCombine(h, HashValue(v));
  return h;
}

uint64_t HashColumns(const Row& row, const std::vector<int>& cols) {
  uint64_t h = 0xD15EC7ull;
  for (int c : cols) h = HashCombine(h, HashValue(row[size_t(c)]));
  return h;
}

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!ValuesEqual(a[i], b[i])) return false;
  }
  return true;
}

/// A hash multiset of whole rows with per-probe comparison charging.
class RowSet {
 public:
  explicit RowSet(CostClock* clock) : clock_(clock) {}

  /// Inserts if not already present; returns true when newly inserted.
  bool InsertDistinct(const Row& row) {
    clock_->Hash();
    auto& bucket = buckets_[HashWholeRow(row)];
    for (const Row& r : bucket) {
      clock_->Comp();
      if (RowsEqual(r, row)) return false;
    }
    clock_->Move();
    bucket.push_back(row);
    ++size_;
    return true;
  }

  bool Contains(const Row& row) {
    clock_->Hash();
    auto it = buckets_.find(HashWholeRow(row));
    if (it == buckets_.end()) {
      clock_->Comp();
      return false;
    }
    for (const Row& r : it->second) {
      clock_->Comp();
      if (RowsEqual(r, row)) return true;
    }
    return false;
  }

  int64_t size() const { return size_; }

 private:
  CostClock* clock_;
  std::unordered_map<uint64_t, std::vector<Row>> buckets_;
  int64_t size_ = 0;
};

/// Partitions `rows` into `b` spill files by whole-row hash; compatible
/// partitioning makes each sub-problem independent.
StatusOr<std::vector<PartitionWriterSet::PartitionFile>> SpillByRowHash(
    const std::vector<Row>& rows, const Schema& schema, int64_t b,
    uint32_t level, ExecContext* ctx, const char* name) {
  PartitionWriterSet writers(ctx, schema, b,
                             b <= 1 ? IoKind::kSequential : IoKind::kRandom,
                             name);
  for (const Row& row : rows) {
    ctx->clock->Hash();
    const uint64_t h =
        Mix64(HashWholeRow(row) ^ (0x9E37ull * (level + 1)));
    MMDB_RETURN_IF_ERROR(
        writers.Append(static_cast<int64_t>(h % uint64_t(b)), row));
  }
  MMDB_RETURN_IF_ERROR(writers.FinishAll());
  return writers.Release();
}

Status SetOpRec(SetOp op, std::vector<Row> a, std::vector<Row> b,
                const Schema& schema, ExecContext* ctx, int depth,
                Relation* out) {
  const int64_t capacity =
      std::max<int64_t>(1, ctx->TuplesInPages(schema, ctx->memory_pages));
  const int64_t total = int64_t(a.size()) + int64_t(b.size());
  if (total <= capacity || depth >= kMaxDepth) {
    RowSet a_set(ctx->clock);
    switch (op) {
      case SetOp::kUnion: {
        for (const Row& row : a) {
          if (a_set.InsertDistinct(row)) out->Add(row);
        }
        for (const Row& row : b) {
          if (a_set.InsertDistinct(row)) out->Add(row);
        }
        return Status::OK();
      }
      case SetOp::kIntersect: {
        for (const Row& row : a) a_set.InsertDistinct(row);
        RowSet emitted(ctx->clock);
        for (const Row& row : b) {
          if (a_set.Contains(row) && emitted.InsertDistinct(row)) {
            out->Add(row);
          }
        }
        return Status::OK();
      }
      case SetOp::kDifference: {
        RowSet b_set(ctx->clock);
        for (const Row& row : b) b_set.InsertDistinct(row);
        for (const Row& row : a) {
          if (!b_set.Contains(row) && a_set.InsertDistinct(row)) {
            out->Add(row);
          }
        }
        return Status::OK();
      }
    }
    return Status::Internal("unknown set op");
  }
  // Spill both sides with the same partitioning; recurse per partition.
  const int64_t parts = std::max<int64_t>(
      2, std::min<int64_t>(ctx->memory_pages, (total + capacity - 1) / capacity));
  MMDB_ASSIGN_OR_RETURN(
      auto a_files, SpillByRowHash(a, schema, parts, uint32_t(depth), ctx,
                                   "setop_a"));
  a.clear();
  a.shrink_to_fit();
  MMDB_ASSIGN_OR_RETURN(
      auto b_files, SpillByRowHash(b, schema, parts, uint32_t(depth), ctx,
                                   "setop_b"));
  b.clear();
  b.shrink_to_fit();
  for (int64_t i = 0; i < parts; ++i) {
    MMDB_ASSIGN_OR_RETURN(std::vector<Row> pa,
                          ReadAndDeletePartition(ctx, schema, a_files[size_t(i)]));
    MMDB_ASSIGN_OR_RETURN(std::vector<Row> pb,
                          ReadAndDeletePartition(ctx, schema, b_files[size_t(i)]));
    MMDB_RETURN_IF_ERROR(SetOpRec(op, std::move(pa), std::move(pb), schema,
                                  ctx, depth + 1, out));
  }
  return Status::OK();
}

Status SemiAntiRec(bool anti, std::vector<Row> r, std::vector<Row> s,
                   const Schema& rs, const Schema& ss, const JoinSpec& spec,
                   ExecContext* ctx, int depth, Relation* out) {
  const int64_t capacity =
      std::max<int64_t>(1, ctx->TuplesInPages(ss, ctx->memory_pages));
  if (static_cast<int64_t>(s.size()) <= capacity || depth >= kMaxDepth) {
    // Build a key set from S (the divisor of the membership test).
    std::unordered_set<uint64_t> hashes;
    std::unordered_map<uint64_t, std::vector<Value>> keys;
    for (const Row& row : s) {
      ctx->clock->Hash();
      ctx->clock->SmallMove();  // keys only
      const Value& key = row[size_t(spec.right_column)];
      keys[HashValue(key)].push_back(key);
    }
    for (const Row& row : r) {
      ctx->clock->Hash();
      const Value& key = row[size_t(spec.left_column)];
      bool found = false;
      auto it = keys.find(HashValue(key));
      if (it != keys.end()) {
        for (const Value& k : it->second) {
          ctx->clock->Comp();
          if (ValuesEqual(k, key)) {
            found = true;
            break;
          }
        }
      } else {
        ctx->clock->Comp();
      }
      if (found != anti) out->Add(row);
    }
    return Status::OK();
  }
  // Partition BOTH relations on the join key (compatible partitioning).
  const int64_t parts = std::max<int64_t>(
      2, std::min<int64_t>(ctx->memory_pages,
                           (int64_t(s.size()) + capacity - 1) / capacity));
  HashPartitioner partitioner(parts, uint32_t(depth + 101));
  auto spill = [&](const std::vector<Row>& rows, const Schema& schema,
                   int key_col, const char* name)
      -> StatusOr<std::vector<PartitionWriterSet::PartitionFile>> {
    PartitionWriterSet writers(ctx, schema, parts, IoKind::kRandom, name);
    for (const Row& row : rows) {
      ctx->clock->Hash();
      MMDB_RETURN_IF_ERROR(writers.Append(
          partitioner.PartitionOf(row[size_t(key_col)]), row));
    }
    MMDB_RETURN_IF_ERROR(writers.FinishAll());
    return writers.Release();
  };
  MMDB_ASSIGN_OR_RETURN(auto r_files,
                        spill(r, rs, spec.left_column, "semi_r"));
  r.clear();
  r.shrink_to_fit();
  MMDB_ASSIGN_OR_RETURN(auto s_files,
                        spill(s, ss, spec.right_column, "semi_s"));
  s.clear();
  s.shrink_to_fit();
  for (int64_t i = 0; i < parts; ++i) {
    MMDB_ASSIGN_OR_RETURN(std::vector<Row> pr,
                          ReadAndDeletePartition(ctx, rs, r_files[size_t(i)]));
    MMDB_ASSIGN_OR_RETURN(std::vector<Row> ps,
                          ReadAndDeletePartition(ctx, ss, s_files[size_t(i)]));
    MMDB_RETURN_IF_ERROR(SemiAntiRec(anti, std::move(pr), std::move(ps), rs,
                                     ss, spec, ctx, depth + 1, out));
  }
  return Status::OK();
}

Status DivisionRec(std::vector<Row> r, const std::vector<int>& group_cols,
                   int divisor_col, const std::vector<Value>& divisor,
                   const std::unordered_set<uint64_t>& divisor_hashes,
                   const Schema& rs, ExecContext* ctx, int depth,
                   Relation* out) {
  const int64_t capacity =
      std::max<int64_t>(1, ctx->TuplesInPages(rs, ctx->memory_pages));
  if (static_cast<int64_t>(r.size()) <= capacity || depth >= kMaxDepth) {
    // Group by the group columns; per group collect which divisor values
    // appeared; emit groups that covered all of them.
    struct Group {
      Row key;
      std::unordered_set<uint64_t> seen;
    };
    std::unordered_map<uint64_t, std::vector<Group>> groups;
    for (const Row& row : r) {
      ctx->clock->Hash();
      const Value& d = row[size_t(divisor_col)];
      const uint64_t dh = HashValue(d);
      if (!divisor_hashes.count(dh)) {
        ctx->clock->Comp();
        continue;  // value not in the divisor: irrelevant
      }
      const uint64_t gh = HashColumns(row, group_cols);
      auto& bucket = groups[gh];
      Group* group = nullptr;
      for (Group& g : bucket) {
        ctx->clock->Comp();
        bool equal = true;
        for (size_t i = 0; i < group_cols.size(); ++i) {
          if (!ValuesEqual(row[size_t(group_cols[i])], g.key[i])) {
            equal = false;
            break;
          }
        }
        if (equal) {
          group = &g;
          break;
        }
      }
      if (group == nullptr) {
        ctx->clock->Move();
        Group g;
        for (int c : group_cols) g.key.push_back(row[size_t(c)]);
        bucket.push_back(std::move(g));
        group = &bucket.back();
      }
      group->seen.insert(dh);
    }
    for (auto& [gh, bucket] : groups) {
      for (Group& g : bucket) {
        if (g.seen.size() == divisor_hashes.size()) {
          out->Add(std::move(g.key));
        }
      }
    }
    return Status::OK();
  }
  // Partition the dividend on the GROUP columns: a group never straddles.
  const int64_t parts = std::max<int64_t>(
      2, std::min<int64_t>(ctx->memory_pages,
                           (int64_t(r.size()) + capacity - 1) / capacity));
  PartitionWriterSet writers(ctx, rs, parts, IoKind::kRandom, "div_r");
  for (const Row& row : r) {
    ctx->clock->Hash();
    const uint64_t h =
        Mix64(HashColumns(row, group_cols) ^ (0xD17ull * (depth + 1)));
    MMDB_RETURN_IF_ERROR(
        writers.Append(static_cast<int64_t>(h % uint64_t(parts)), row));
  }
  r.clear();
  r.shrink_to_fit();
  MMDB_RETURN_IF_ERROR(writers.FinishAll());
  for (const auto& pf : writers.Release()) {
    if (pf.records == 0) {
      ctx->disk->DeleteFile(pf.file);
      continue;
    }
    MMDB_ASSIGN_OR_RETURN(std::vector<Row> part,
                          ReadAndDeletePartition(ctx, rs, pf));
    MMDB_RETURN_IF_ERROR(DivisionRec(std::move(part), group_cols,
                                     divisor_col, divisor, divisor_hashes,
                                     rs, ctx, depth + 1, out));
  }
  return Status::OK();
}

}  // namespace

std::string_view SetOpName(SetOp op) {
  switch (op) {
    case SetOp::kUnion:
      return "UNION";
    case SetOp::kIntersect:
      return "INTERSECT";
    case SetOp::kDifference:
      return "EXCEPT";
  }
  return "?";
}

StatusOr<Relation> HashSetOp(SetOp op, const Relation& a, const Relation& b,
                             ExecContext* ctx) {
  if (!(a.schema() == b.schema())) {
    return Status::InvalidArgument("set operands must share a schema");
  }
  Relation out(a.schema());
  MMDB_RETURN_IF_ERROR(
      SetOpRec(op, a.rows(), b.rows(), a.schema(), ctx, 0, &out));
  return out;
}

StatusOr<Relation> HashSemiJoin(const Relation& r, const Relation& s,
                                const JoinSpec& spec, ExecContext* ctx) {
  Relation out(r.schema());
  MMDB_RETURN_IF_ERROR(SemiAntiRec(/*anti=*/false, r.rows(), s.rows(),
                                   r.schema(), s.schema(), spec, ctx, 0,
                                   &out));
  return out;
}

StatusOr<Relation> HashAntiJoin(const Relation& r, const Relation& s,
                                const JoinSpec& spec, ExecContext* ctx) {
  Relation out(r.schema());
  MMDB_RETURN_IF_ERROR(SemiAntiRec(/*anti=*/true, r.rows(), s.rows(),
                                   r.schema(), s.schema(), spec, ctx, 0,
                                   &out));
  return out;
}

StatusOr<Relation> HashDivision(const Relation& r,
                                const std::vector<int>& group_columns,
                                int divisor_column, const Relation& s,
                                int s_column, ExecContext* ctx) {
  if (group_columns.empty()) {
    return Status::InvalidArgument("division needs group columns");
  }
  for (int c : group_columns) {
    if (c < 0 || c >= r.schema().num_columns()) {
      return Status::InvalidArgument("bad group column");
    }
  }
  if (divisor_column < 0 || divisor_column >= r.schema().num_columns() ||
      s_column < 0 || s_column >= s.schema().num_columns()) {
    return Status::InvalidArgument("bad divisor column");
  }
  // Distinct divisor values (must fit in memory; they are the "required
  // set" and are usually tiny).
  std::vector<Value> divisor;
  std::unordered_set<uint64_t> divisor_hashes;
  for (const Row& row : s.rows()) {
    ctx->clock->Hash();
    const Value& v = row[size_t(s_column)];
    if (divisor_hashes.insert(HashValue(v)).second) {
      ctx->clock->SmallMove();
      divisor.push_back(v);
    }
  }
  const int64_t divisor_capacity =
      ctx->TuplesInPages(s.schema(), ctx->memory_pages);
  if (static_cast<int64_t>(divisor.size()) > divisor_capacity) {
    return Status::ResourceExhausted(
        "divisor value set exceeds the memory grant");
  }
  Relation out(r.schema().Select(group_columns));
  if (divisor.empty()) return out;  // x ÷ {} is empty under SQL convention
  MMDB_RETURN_IF_ERROR(DivisionRec(r.rows(), group_columns, divisor_column,
                                   divisor, divisor_hashes, r.schema(), ctx,
                                   0, &out));
  return out;
}

}  // namespace mmdb
