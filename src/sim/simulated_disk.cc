#include "sim/simulated_disk.h"

#include <cstring>

#include "common/check.h"

namespace mmdb {

SimulatedDisk::FileId SimulatedDisk::CreateFile(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  FileId id = next_id_++;
  files_[id].name = std::move(name);
  return id;
}

void SimulatedDisk::DeleteFile(FileId id) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(id);
}

int64_t SimulatedDisk::NumPages(FileId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(id);
  if (it == files_.end()) return 0;
  return static_cast<int64_t>(it->second.pages.size());
}

void SimulatedDisk::Charge(File* f, int64_t page_no, IoKind kind) {
  if (clock_ != nullptr) {
    if (kind == IoKind::kSequential) {
      clock_->IoSeq();
    } else {
      clock_->IoRand();
    }
  }
  if (kind == IoKind::kSequential) {
    ++stats_.seq_ios;
  } else {
    ++stats_.rand_ios;
  }
  f->last_page_accessed = page_no;
}

Status SimulatedDisk::WritePageLocked(FileId id, int64_t page_no,
                                      const void* data, IoKind kind) {
  auto it = files_.find(id);
  if (it == files_.end()) return Status::NotFound("no such file");
  if (page_no < 0) return Status::InvalidArgument("negative page number");
  File& f = it->second;
  std::vector<char> buf(static_cast<const char*>(data),
                        static_cast<const char*>(data) + page_size_);
  int64_t persist = page_size_;
  if (injector_ != nullptr) {
    Status s = injector_->OnWrite(FaultDevice::kDataDisk, id, page_no,
                                  buf.data(), page_size_, &persist);
    if (!s.ok()) {
      ++stats_.io_errors;
      return s;
    }
  }
  if (page_no >= static_cast<int64_t>(f.pages.size())) {
    f.pages.resize(static_cast<size_t>(page_no) + 1);
  }
  auto& page = f.pages[static_cast<size_t>(page_no)];
  if (persist < page_size_) {
    // Torn write: the prefix is new, the suffix keeps the old sector
    // contents (zeros if the page was never written).
    if (page.empty()) page.assign(static_cast<size_t>(page_size_), 0);
    std::memcpy(page.data(), buf.data(), static_cast<size_t>(persist));
  } else {
    page = std::move(buf);
  }
  ++stats_.writes;
  Charge(&f, page_no, kind);
  return Status::OK();
}

Status SimulatedDisk::WritePage(FileId id, int64_t page_no, const void* data,
                                IoKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  return WritePageLocked(id, page_no, data, kind);
}

Status SimulatedDisk::ReadPage(FileId id, int64_t page_no, void* out,
                               IoKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(id);
  if (it == files_.end()) return Status::NotFound("no such file");
  File& f = it->second;
  if (page_no < 0 || page_no >= static_cast<int64_t>(f.pages.size())) {
    return Status::OutOfRange("page beyond end of file");
  }
  if (injector_ != nullptr) {
    Status s = injector_->OnRead(FaultDevice::kDataDisk, id, page_no);
    if (!s.ok()) {
      ++stats_.io_errors;
      return s;
    }
  }
  const auto& page = f.pages[static_cast<size_t>(page_no)];
  if (page.empty()) {
    std::memset(out, 0, static_cast<size_t>(page_size_));
  } else {
    std::memcpy(out, page.data(), static_cast<size_t>(page_size_));
  }
  ++stats_.reads;
  Charge(&f, page_no, kind);
  return Status::OK();
}

StatusOr<int64_t> SimulatedDisk::AppendPage(FileId id, const void* data,
                                            IoKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(id);
  if (it == files_.end()) return Status::NotFound("no such file");
  int64_t page_no = static_cast<int64_t>(it->second.pages.size());
  MMDB_RETURN_IF_ERROR(WritePageLocked(id, page_no, data, kind));
  return page_no;
}

StatusOr<int64_t> SimulatedDisk::AllocatePage(FileId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(id);
  if (it == files_.end()) return Status::NotFound("no such file");
  File& f = it->second;
  f.pages.emplace_back();  // empty vector reads back as zeros
  return static_cast<int64_t>(f.pages.size()) - 1;
}

int64_t SimulatedDisk::TotalPages() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [id, f] : files_) {
    total += static_cast<int64_t>(f.pages.size());
  }
  return total;
}

}  // namespace mmdb
