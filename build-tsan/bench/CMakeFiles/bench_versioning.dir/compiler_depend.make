# Empty compiler generated dependencies file for bench_versioning.
# This may be replaced when dependencies are built.
