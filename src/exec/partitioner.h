#ifndef MMDB_EXEC_PARTITIONER_H_
#define MMDB_EXEC_PARTITIONER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "storage/heap_file.h"
#include "storage/relation.h"
#include "storage/row.h"

namespace mmdb {

/// §3.3: a partition of a relation "compatible with h" — every tuple with
/// the same hash value lands in the same subset, so R ⋈ S decomposes into
/// R_i ⋈ S_i. Partitioning both relations with the same function is the
/// foundation of the GRACE and hybrid joins.
///
/// `level` salts the hash so recursive re-partitioning of an overflowed
/// partition (the paper's recursive hybrid fallback) uses an independent
/// hash function.
class HashPartitioner {
 public:
  /// Uniform split into `num_partitions` buckets.
  HashPartitioner(int64_t num_partitions, uint32_t level = 0);

  /// Hybrid split: hash-space fraction `q0` goes to partition 0 (kept
  /// resident); the rest spreads uniformly over partitions 1..spilled.
  static HashPartitioner Hybrid(double q0, int64_t spilled, uint32_t level = 0);

  /// Partition of a key (the caller charges the clock for the hash).
  int64_t PartitionOf(const Value& key) const;

  int64_t num_partitions() const { return num_partitions_; }
  double q0() const { return q0_; }

 private:
  HashPartitioner(int64_t num_partitions, double q0, uint32_t level);

  int64_t num_partitions_;  // total, including partition 0
  double q0_;               // 0 => plain uniform split
  uint64_t salt_;
};

/// A set of per-partition spill files with one in-flight output buffer page
/// each (the paper's "one page of main memory as an output buffer for each
/// set"). Appends charge one tuple move; page flushes charge `kind` I/O.
class PartitionWriterSet {
 public:
  /// Descriptor of a finished partition spill file (ownership of the disk
  /// file passes to the holder; delete via disk->DeleteFile).
  struct PartitionFile {
    SimulatedDisk::FileId file = SimulatedDisk::kInvalidFile;
    int64_t records = 0;
    int64_t pages = 0;
  };

  PartitionWriterSet(ExecContext* ctx, const Schema& schema,
                     int64_t num_partitions, IoKind kind,
                     const std::string& name_prefix);

  /// Serializes `row` into partition `p`'s buffer.
  Status Append(int64_t p, const Row& row);

  /// Append charging an explicit `clock` and serializing via caller-owned
  /// `scratch` (record_size() bytes). The parallel distribution step runs
  /// one task per partition, so *distinct* partitions may be appended
  /// concurrently; two threads must never append to the same partition.
  Status AppendTo(int64_t p, const Row& row, CostClock* clock, char* scratch);

  int32_t record_size() const { return schema_.record_size(); }

  /// Flushes all partial buffers; after this, Release() is valid.
  Status FinishAll();

  /// Transfers ownership of the partition files.
  std::vector<PartitionFile> Release();

 private:
  ExecContext* ctx_;
  const Schema& schema_;
  std::vector<std::unique_ptr<PagedRecordWriter>> writers_;
  std::vector<char> record_buf_;
};

/// Reads a whole spilled partition back into memory (sequential I/O),
/// deleting the file afterwards.
StatusOr<std::vector<Row>> ReadAndDeletePartition(
    ExecContext* ctx, const Schema& schema,
    const PartitionWriterSet::PartitionFile& pf);

}  // namespace mmdb

#endif  // MMDB_EXEC_PARTITIONER_H_
